//! Property tests for the lexer on adversarial input: random
//! concatenations of the constructs most likely to confuse a token
//! scanner — nested block comments inside raw strings, lifetimes
//! adjacent to char literals, `>>` in generics, `//` inside string
//! literals — asserting that token spans always round-trip to the
//! source: in-order, non-overlapping, on char boundaries, tiling every
//! non-whitespace byte, with line/col derivable from the offsets.

use proptest::prelude::*;
use tbstc_lint::lexer::{lex, TokKind};

/// The adversarial vocabulary. Every fragment is a complete lexeme
/// sequence on its own, so fragments can also be checked compositionally.
const FRAGMENTS: &[&str] = &[
    // Raw strings hiding comment/quote syntax, any number of hashes.
    "r#\"/* nested /* block */ comment */\"#",
    "r##\"quote \"# inside\"##",
    "br#\"bytes // not a comment\"#",
    "r\"multi\nline raw\"",
    // Char literals vs lifetimes, adjacent and escaped.
    "'a'",
    "'a",
    "'\\''",
    "'\\\\'",
    "'é'",
    "<'a,'b>",
    "foo::<'static>('x')",
    // `>>` in generics, shifts, compound assignment.
    "x::<Vec<Vec<u8>>>()",
    "a>>=b",
    "m >> 2",
    // Comments, nested and doc.
    "/* /* deep /* deeper */ */ */",
    "// trailing line comment",
    "/// doc \"with quotes\"",
    "//! inner doc",
    "/** block doc */",
    // Strings that look like other things.
    "\"str with // not a comment\"",
    "\"escaped \\\" quote\"",
    "\"—unicode– contents\"",
    // Loose numerics and raw identifiers.
    "1_000.5e-3",
    "0xFF_u32",
    "r#match",
    "b'\\xFF'",
    "let x: &'a str = \"y\";",
];

const SEPS: &[&str] = &[" ", "\n", "\t", "", "  \n\n", "\r\n"];

/// Asserts every span invariant the engine relies on.
fn assert_round_trip(src: &str) {
    let tokens = lex(src);
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let mut prev_pos = (0u32, 0u32);
    for t in &tokens {
        assert!(t.start >= pos, "overlapping or unordered token {t:?}");
        assert!(t.start < t.end, "empty token {t:?}");
        assert!(t.end <= src.len(), "token past the end {t:?}");
        assert!(
            src.get(t.start..t.end).is_some(),
            "span off a char boundary: {t:?} in {src:?}"
        );
        let gap = src.get(pos..t.start).expect("gap on char boundaries");
        assert!(
            gap.chars().all(char::is_whitespace),
            "uncovered non-whitespace {gap:?} before {t:?} in {src:?}"
        );
        // line/col must be derivable from the byte offset alone.
        let line = 1 + bytes[..t.start].iter().filter(|&&b| b == b'\n').count() as u32;
        let line_start = bytes[..t.start]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        let col = (t.start - line_start + 1) as u32;
        assert_eq!((t.line, t.col), (line, col), "bad position for {t:?}");
        assert!((t.line, t.col) > prev_pos, "positions not increasing");
        prev_pos = (t.line, t.col);
        pos = t.end;
    }
    let tail = src.get(pos..).expect("tail on char boundaries");
    assert!(
        tail.chars().all(char::is_whitespace),
        "uncovered trailing bytes {tail:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary fragment soups — including empty separators, which
    /// glue fragments into new composite lexemes — still tile exactly.
    #[test]
    fn token_spans_tile_any_fragment_soup(
        pieces in proptest::collection::vec(
            (0usize..FRAGMENTS.len(), 0usize..SEPS.len()),
            1..32,
        ),
    ) {
        let mut src = String::new();
        for &(f, s) in &pieces {
            src.push_str(FRAGMENTS[f]);
            src.push_str(SEPS[s]);
        }
        assert_round_trip(&src);
    }

    /// With newline separators every fragment stays self-delimiting, so
    /// lexing the concatenation must equal concatenating the lexes.
    #[test]
    fn newline_separated_fragments_lex_compositionally(
        picks in proptest::collection::vec(0usize..FRAGMENTS.len(), 1..24),
    ) {
        let src: String = picks
            .iter()
            .map(|&f| format!("{}\n", FRAGMENTS[f]))
            .collect();
        assert_round_trip(&src);
        let got: Vec<(TokKind, String)> = lex(&src)
            .iter()
            .map(|t| (t.kind, t.text(&src).to_string()))
            .collect();
        let want: Vec<(TokKind, String)> = picks
            .iter()
            .flat_map(|&f| {
                let frag = FRAGMENTS[f];
                lex(frag)
                    .iter()
                    .map(|t| (t.kind, t.text(frag).to_string()))
                    .collect::<Vec<_>>()
            })
            .collect();
        prop_assert_eq!(got, want);
    }
}

/// The targeted shapes the vocabulary is built around, pinned exactly.
#[test]
fn adversarial_shapes_lex_to_the_expected_kinds() {
    let kinds = |src: &str| lex(src).iter().map(|t| t.kind).collect::<Vec<_>>();

    // A nested block comment inside a raw string is one string literal.
    assert_eq!(
        kinds("r#\"/* nested /* block */ comment */\"#"),
        [TokKind::StrLit]
    );
    // Lifetime adjacent to a char literal stays two tokens.
    assert_eq!(
        kinds("foo::<'static>('x')"),
        [
            TokKind::Ident,
            TokKind::Punct,
            TokKind::Punct,
            TokKind::Lifetime,
            TokKind::Punct,
            TokKind::Punct,
            TokKind::CharLit,
            TokKind::Punct,
        ]
    );
    // `>>` closing nested generics is two puncts, not a shift operator
    // token that would desynchronize spans.
    let src = "x::<Vec<Vec<u8>>>()";
    assert_round_trip(src);
    assert_eq!(
        lex(src).iter().filter(|t| t.text(src) == ">").count(),
        3,
        "every `>` is its own token"
    );
    // Nesting depth is tracked: one comment, fully consumed.
    assert_eq!(
        kinds("/* /* deep /* deeper */ */ */"),
        [TokKind::BlockComment]
    );
    // `//` inside a string never starts a comment.
    assert_eq!(
        kinds("\"str with // not a comment\" 1"),
        [TokKind::StrLit, TokKind::Num]
    );
}
