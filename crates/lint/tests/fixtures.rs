//! Fixture tests: seed one violation of each rule into a source snippet
//! and assert the engine reports it at the right `file:line`, and that
//! suppressions, test-code exclusion, and the baseline behave.

use tbstc_lint::engine::{lint_source_rules, LintOptions};
use tbstc_lint::{lint_source, lint_workspace, Finding, Severity};

fn rules_at(findings: &[Finding], rule: &str) -> Vec<(u32, u32)> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.line, f.col))
        .collect()
}

// --- panic-surface ------------------------------------------------------

#[test]
fn panic_surface_flags_unwrap_expect_and_macros() {
    let src = "\
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect(\"msg\");
    if a == 0 { panic!(\"boom\"); }
    b
}
";
    let fs = lint_source("crates/core/src/f.rs", src);
    assert_eq!(rules_at(&fs, "panic-surface"), [(2, 15), (3, 15), (4, 17)]);
    assert!(fs.iter().all(|f| f.severity == Severity::Warning));
}

#[test]
fn panic_surface_ignores_strings_comments_and_tests() {
    let src = "\
// a comment saying .unwrap() is bad
fn f() -> &'static str {
    \"call .unwrap() here\"
}
/// Docs may say panic! freely.
fn g() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        Some(1).unwrap();
    }
}
";
    assert!(lint_source("crates/core/src/f.rs", src).is_empty());
}

#[test]
fn panic_surface_indexing_only_fires_in_serve() {
    let src = "\
fn head(buf: &[u8], pos: usize) -> &[u8] {
    &buf[..pos]
}
";
    let serve = lint_source("crates/serve/src/f.rs", src);
    assert_eq!(rules_at(&serve, "panic-surface"), [(2, 9)]);
    assert!(lint_source("crates/core/src/f.rs", src).is_empty());

    // Array literals and attributes are not index expressions.
    let ok = "\
#[derive(Clone)]
struct S;
fn g() -> [u8; 2] {
    let a = [1u8, 2];
    a
}
";
    assert!(lint_source("crates/serve/src/g.rs", ok).is_empty());
}

// --- determinism --------------------------------------------------------

#[test]
fn determinism_flags_hash_containers_and_clock() {
    let src = "\
use std::collections::HashMap;
fn f() {
    let t = std::time::SystemTime::now();
    let _ = (t, HashMap::<u32, u32>::new());
}
";
    let fs = lint_source("crates/runner/src/f.rs", src);
    let lines: Vec<u32> = fs
        .iter()
        .filter(|f| f.rule == "determinism")
        .map(|f| f.line)
        .collect();
    assert_eq!(lines, [1, 3, 4]);
}

// --- lock-discipline ----------------------------------------------------

#[test]
fn lock_discipline_flags_lock_unwrap_as_error() {
    let src = "\
use std::sync::Mutex;
fn f(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}
";
    let fs = lint_source("crates/core/src/f.rs", src);
    let hits: Vec<&Finding> = fs.iter().filter(|f| f.rule == "lock-discipline").collect();
    assert_eq!(hits.len(), 1);
    assert_eq!((hits[0].line, hits[0].severity), (3, Severity::Error));
    // The unwrap itself is not double-reported by panic-surface.
    assert!(rules_at(&fs, "panic-surface").is_empty());
}

#[test]
fn lock_discipline_flags_guard_across_io_in_serve_only() {
    let src = "\
fn f(m: &std::sync::Mutex<u32>, out: &mut dyn std::io::Write) {
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    out.write_all(b\"x\").ok();
    drop(g);
    out.write_all(b\"y\").ok();
}
";
    let serve = lint_source("crates/serve/src/f.rs", src);
    assert_eq!(rules_at(&serve, "lock-discipline"), [(3, 9)]);
    // Outside serve/runner the guard heuristic is off.
    assert!(rules_at(&lint_source("crates/sim/src/f.rs", src), "lock-discipline").is_empty());
    // Scope exit also releases the guard.
    let scoped = "\
fn f(m: &std::sync::Mutex<u32>, out: &mut dyn std::io::Write) {
    {
        let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = *g;
    }
    out.write_all(b\"y\").ok();
}
";
    assert!(rules_at(
        &lint_source("crates/serve/src/f.rs", scoped),
        "lock-discipline"
    )
    .is_empty());
}

// --- arch-dispatch ------------------------------------------------------

#[test]
fn arch_dispatch_catches_dispatch_shapes() {
    let flagged = [
        "fn f(a: Arch) { match a { Arch::Tc => {} _ => {} } }",
        "fn f(a: Arch) -> bool { matches!(a, Arch::TbStc | Arch::DvpeFan) }",
    ];
    for src in flagged {
        let fs = lint_source("crates/runner/src/f.rs", src);
        assert!(
            fs.iter()
                .any(|f| f.rule == "arch-dispatch" && f.severity == Severity::Error),
            "expected a finding in {src:?}"
        );
    }
    let legal = [
        "fn f() { let a = Arch::TbStc; }",
        "fn f() -> [Arch; 2] { [Arch::Tc, Arch::Stc] }",
        "fn f(arch: Arch) -> bool { arch == Arch::Sgcn }",
        "fn f(a: X) { match a { Arch::TbStcLike => {} } }",
    ];
    for src in legal {
        let fs = lint_source("crates/runner/src/f.rs", src);
        assert!(
            rules_at(&fs, "arch-dispatch").is_empty(),
            "false positive in {src:?}: {fs:?}"
        );
    }
    // The archs/ directory itself is exempt.
    let fs = lint_source(
        "crates/sim/src/archs/tc.rs",
        "fn f(a: Arch) { match a { Arch::Tc => {} _ => {} } }",
    );
    assert!(rules_at(&fs, "arch-dispatch").is_empty());
}

// --- crate-hygiene ------------------------------------------------------

#[test]
fn crate_hygiene_requires_forbid_unsafe_in_roots() {
    let bare = "pub fn f() {}\n";
    let fs = lint_source("crates/demo/src/lib.rs", bare);
    assert_eq!(rules_at(&fs, "crate-hygiene"), [(1, 1)]);
    // Non-root modules don't need the attribute.
    assert!(lint_source("crates/demo/src/util.rs", bare).is_empty());
    // Either forbid or deny satisfies the rule.
    for attr in ["#![forbid(unsafe_code)]", "#![deny(unsafe_code)]"] {
        let src = format!("{attr}\npub fn f() {{}}\n");
        assert!(lint_source("crates/demo/src/lib.rs", &src).is_empty());
    }
}

// --- unsafe-audit -------------------------------------------------------

#[test]
fn unsafe_audit_requires_safety_comment_in_allowlisted_modules() {
    let bad = "\
#[allow(unsafe_code)]
fn f() {
    unsafe { core::hint::unreachable_unchecked() }
}
";
    // event.rs is allowlisted, so the only finding is the missing
    // SAFETY: justification.
    let fs = lint_source("crates/serve/src/event.rs", bad);
    assert_eq!(rules_at(&fs, "unsafe-audit"), [(3, 5)]);

    let good = "\
#[allow(unsafe_code)]
fn f() {
    // SAFETY: provably unreachable, guarded above.
    unsafe { core::hint::unreachable_unchecked() }
}
";
    let fs = lint_source("crates/serve/src/event.rs", good);
    assert!(rules_at(&fs, "unsafe-audit").is_empty(), "{fs:?}");
}

#[test]
fn unsafe_audit_rejects_unsafe_outside_the_allowlist() {
    let src = "\
#![deny(unsafe_code)]
#[allow(unsafe_code)]
fn f() {
    // SAFETY: justified, but this module is not audited.
    unsafe { core::hint::unreachable_unchecked() }
}
";
    let fs = lint_source("crates/demo/src/lib.rs", src);
    let hits = rules_at(&fs, "unsafe-audit");
    assert_eq!(hits, [(5, 5)], "{fs:?}");
    assert!(fs
        .iter()
        .filter(|f| f.rule == "unsafe-audit")
        .all(|f| f.severity == Severity::Error));
    assert!(fs[0].message.contains("allowlist"), "{fs:?}");
    // The serve syscall shims are all allowlisted.
    for path in [
        "crates/serve/src/event.rs",
        "crates/serve/src/signal.rs",
        "crates/serve/src/store.rs",
    ] {
        let fs = lint_source(path, "// SAFETY: shim.\nfn f() { unsafe { g() } }\n");
        assert!(rules_at(&fs, "unsafe-audit").is_empty(), "{path}: {fs:?}");
    }
}

// --- hot-path-alloc -----------------------------------------------------

#[test]
fn hot_path_alloc_flags_vec_new_everywhere() {
    let src = "fn f() -> Vec<u32> { let v = Vec::new(); v }\n";
    let fs = lint_source("crates/core/src/f.rs", src);
    assert_eq!(rules_at(&fs, "hot-path-alloc").len(), 1);
    // with_capacity is the fix, not a finding; `Vec<u32>` in a type
    // position is not a constructor.
    let ok = "fn f() -> Vec<u32> { Vec::with_capacity(8) }\n";
    assert!(lint_source("crates/core/src/f.rs", ok).is_empty());
}

#[test]
fn hot_path_alloc_flags_uncapped_push_on_hot_paths_only() {
    let src = "\
fn f(n: usize) -> Vec<u32> {
    let mut v = Vec::new();
    for i in 0..n {
        v.push(i as u32);
    }
    v
}
";
    let hot = lint_source("crates/sim/src/plan.rs", src);
    assert_eq!(rules_at(&hot, "hot-path-alloc"), [(2, 17), (4, 11)]);
    // Off the hot path only the Vec::new itself is reported.
    assert_eq!(
        rules_at(
            &lint_source("crates/sim/src/compute.rs", src),
            "hot-path-alloc"
        )
        .len(),
        1
    );
    // A with_capacity binding pushes freely even on the hot path.
    let ok = "\
fn f(n: usize) -> Vec<u32> {
    let mut v = Vec::with_capacity(n);
    for i in 0..n {
        v.push(i as u32);
    }
    v
}
";
    assert!(lint_source("crates/matrix/src/gemm.rs", ok).is_empty());
}

#[test]
fn hot_path_alloc_suppression_carries_reason() {
    let src = "\
fn f() -> Vec<u32> {
    // tbstc-lint: allow(hot-path-alloc) — output length is input-dependent
    let v = Vec::new();
    v
}
";
    assert!(lint_source("crates/sim/src/plan.rs", src).is_empty());
}

// --- blocking-in-event-loop ---------------------------------------------

#[test]
fn blocking_in_event_loop_flags_sleep_and_blocking_calls() {
    let src = "\
fn f(s: &mut std::net::TcpStream, rx: &std::sync::mpsc::Receiver<u8>) {
    std::thread::sleep(std::time::Duration::from_millis(15));
    use std::io::Write;
    s.write_all(b\"x\").ok();
    let _ = rx.recv();
}
";
    let fs = lint_source("crates/serve/src/event.rs", src);
    let hits = rules_at(&fs, "blocking-in-event-loop");
    assert_eq!(hits.len(), 3, "sleep + write_all + recv: {fs:?}");
    assert!(fs
        .iter()
        .filter(|f| f.rule == "blocking-in-event-loop")
        .all(|f| f.severity == Severity::Error));
    // The same code is legal outside the event-loop files (server.rs
    // worker paths may block).
    assert!(rules_at(
        &lint_source("crates/serve/src/server.rs", src),
        "blocking-in-event-loop"
    )
    .is_empty());
}

#[test]
fn blocking_in_event_loop_flags_io_under_a_lock_guard() {
    let src = "\
fn f(m: &std::sync::Mutex<u32>, s: &mut std::net::TcpStream) {
    use std::io::Write;
    let g = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = s.write(b\"x\");
    drop(g);
    let _ = s.write(b\"y\");
}
";
    let fs = lint_source("crates/serve/src/conn.rs", src);
    assert_eq!(
        rules_at(&fs, "blocking-in-event-loop"),
        [(4, 15)],
        "only the guarded write is an error: {fs:?}"
    );
    // A bare non-blocking-style read/write with no guard is the
    // sanctioned I/O shape.
    let ok = "\
fn f(s: &mut std::net::TcpStream) -> std::io::Result<usize> {
    use std::io::Read;
    let mut buf = [0u8; 16];
    s.read(&mut buf)
}
";
    assert!(lint_source("crates/serve/src/conn.rs", ok).is_empty());
}

#[test]
fn blocking_in_event_loop_skips_test_code() {
    let src = "\
pub fn g() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
";
    assert!(rules_at(
        &lint_source("crates/serve/src/event.rs", src),
        "blocking-in-event-loop"
    )
    .is_empty());
}

// --- suppressions & rule filtering --------------------------------------

#[test]
fn trailing_suppression_silences_its_line_only() {
    let src = "\
fn f(x: Option<u32>) -> u32 {
    let a = x.unwrap(); // tbstc-lint: allow(panic-surface) — fixture
    x.unwrap() + a
}
";
    let fs = lint_source("crates/core/src/f.rs", src);
    assert_eq!(rules_at(&fs, "panic-surface"), [(3, 7)]);
}

#[test]
fn standalone_suppression_covers_next_code_line() {
    let src = "\
fn f(x: Option<u32>) -> u32 {
    // tbstc-lint: allow(panic-surface) — fixture justification
    x.unwrap()
}
";
    assert!(lint_source("crates/core/src/f.rs", src).is_empty());
}

#[test]
fn suppression_must_name_the_right_rule() {
    let src = "\
fn f(x: Option<u32>) -> u32 {
    x.unwrap() // tbstc-lint: allow(determinism) — wrong rule
}
";
    let fs = lint_source("crates/core/src/f.rs", src);
    assert_eq!(rules_at(&fs, "panic-surface").len(), 1);
}

#[test]
fn multi_rule_suppression_and_counting() {
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> u32 {
    // tbstc-lint: allow(panic-surface, determinism) — fixture
    *m.get(&0).unwrap()
}
";
    let (fs, suppressed) = lint_source_rules("crates/core/src/f.rs", src, None, None);
    // The HashMap mentions on lines 1–2 are still flagged; line 4's
    // unwrap is suppressed.
    assert_eq!(rules_at(&fs, "determinism"), [(1, 23), (2, 10)]);
    assert!(rules_at(&fs, "panic-surface").is_empty());
    assert_eq!(suppressed, 1);
}

#[test]
fn rule_filter_restricts_output() {
    let src = "\
use std::collections::HashMap;
fn f(x: Option<u32>) -> u32 { x.unwrap() }
";
    let only = vec!["determinism".to_string()];
    let (fs, _) = lint_source_rules("crates/core/src/f.rs", src, Some(&only), None);
    assert!(fs.iter().all(|f| f.rule == "determinism"));
    assert_eq!(fs.len(), 1);
}

// --- spec-coverage -------------------------------------------------------

#[test]
fn spec_coverage_requires_a_bundled_document_per_registry_arch() {
    // Run against the real checkout: every shipped arch has its document.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf();
    let only = vec!["spec-coverage".to_string()];
    let covered = r#"impl ArchModel for TbStc {
    fn canonical_name(&self) -> &'static str {
        "tb-stc"
    }
}
"#;
    let (fs, _) = lint_source_rules(
        "crates/sim/src/archs/tb_stc.rs",
        covered,
        Some(&only),
        Some(&root),
    );
    assert!(fs.is_empty(), "{fs:?}");

    // An arch module whose name has no crates/core/specs/<name>.json.
    let uncovered = covered.replace("tb-stc", "warp-arch");
    let (fs, _) = lint_source_rules(
        "crates/sim/src/archs/warp_arch.rs",
        &uncovered,
        Some(&only),
        Some(&root),
    );
    assert_eq!(fs.len(), 1, "{fs:?}");
    assert_eq!(fs[0].rule, "spec-coverage");
    assert_eq!(fs[0].severity, Severity::Error);
    assert!(fs[0].message.contains("crates/core/specs/warp-arch.json"));

    // Fixture mode (no root) and non-arch files stay silent.
    let (fs, _) = lint_source_rules(
        "crates/sim/src/archs/warp_arch.rs",
        &uncovered,
        Some(&only),
        None,
    );
    assert!(fs.is_empty());
    let (fs, _) = lint_source_rules(
        "crates/sim/src/other.rs",
        &uncovered,
        Some(&only),
        Some(&root),
    );
    assert!(fs.is_empty());
}

// --- workspace driver & baseline ----------------------------------------

#[test]
fn workspace_driver_applies_baseline_and_reports_stale() {
    let dir = std::env::temp_dir().join(format!("tbstc-lint-fixture-{}", std::process::id()));
    let src_dir = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n//! Demo.\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("lint-baseline.txt"),
        "# comment\n\
         panic-surface\tcrates/demo/src/lib.rs\tpub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
         panic-surface\tcrates/demo/src/gone.rs\tstale entry\n",
    )
    .unwrap();

    let report = lint_workspace(&LintOptions {
        root: dir.clone(),
        rules: None,
        baseline: None,
        cache: None,
    })
    .unwrap();
    assert_eq!(report.files_scanned, 1);
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.baselined.len(), 1);
    assert_eq!(report.stale_baseline.len(), 1);
    assert!(report.stale_baseline[0].contains("gone.rs"));
    assert!(!report.fails(true));

    // Without the baseline the same finding fails --deny-warnings.
    std::fs::remove_file(dir.join("lint-baseline.txt")).unwrap();
    let report = lint_workspace(&LintOptions {
        root: dir.clone(),
        rules: None,
        baseline: None,
        cache: None,
    })
    .unwrap();
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].line, 3);
    assert!(report.fails(true));
    assert!(!report.fails(false)); // warnings pass without --deny-warnings

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn incremental_cache_replays_warm_runs_and_invalidates_on_edit() {
    let dir = std::env::temp_dir().join(format!("tbstc-lint-cache-e2e-{}", std::process::id()));
    let src_dir = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n//! Demo.\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    )
    .unwrap();
    let cache_path = dir.join("lint.cache");
    let opts = LintOptions {
        root: dir.clone(),
        rules: None,
        baseline: None,
        cache: Some(cache_path.clone()),
    };

    let cold = lint_workspace(&opts).unwrap();
    assert_eq!((cold.cache_hits, cold.cache_misses), (0, 1));
    let stored = std::fs::read_to_string(&cache_path).unwrap();

    let warm = lint_workspace(&opts).unwrap();
    assert_eq!((warm.cache_hits, warm.cache_misses), (1, 0));
    assert_eq!(warm.findings, cold.findings);
    assert_eq!(warm.suppressed, cold.suppressed);
    // A fully-warm run must not rewrite the store.
    assert_eq!(std::fs::read_to_string(&cache_path).unwrap(), stored);

    // Editing the file invalidates exactly it (and the workspace pass).
    std::fs::write(
        src_dir.join("lib.rs"),
        "#![forbid(unsafe_code)]\n//! Demo.\npub fn f(x: Option<u32>) -> u32 { x.expect(\"y\") }\n",
    )
    .unwrap();
    let edited = lint_workspace(&opts).unwrap();
    assert_eq!((edited.cache_hits, edited.cache_misses), (0, 1));
    assert!(edited
        .findings
        .iter()
        .any(|f| f.message.contains(".expect()")));

    // A corrupt store degrades to a cold run, never a wrong one.
    std::fs::write(&cache_path, "garbage\n").unwrap();
    let recovered = lint_workspace(&opts).unwrap();
    assert_eq!((recovered.cache_hits, recovered.cache_misses), (0, 1));
    assert_eq!(recovered.findings, edited.findings);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_output_is_well_formed_enough_to_grep() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let fs = lint_source("crates/core/src/f.rs", src);
    let report = tbstc_lint::LintReport {
        findings: fs,
        ..Default::default()
    };
    let json = tbstc_lint::render_json(&report);
    assert!(json.contains("\"schema\":\"tbstc-lint.v1\""));
    assert!(json.contains("\"rule\":\"panic-surface\""));
    assert!(json.contains("\"line\":1"));
    let human = tbstc_lint::render_human(&report, true);
    assert!(human.contains("crates/core/src/f.rs:1:"));
    assert!(human.contains("warning[panic-surface]"));
}

// --- store-lock-discipline ----------------------------------------------

#[test]
fn store_lock_discipline_flags_direct_store_writes_in_serve() {
    let src = "\
use std::fs::{self, File, OpenOptions};
fn persist(dir: &std::path::Path, body: &str) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(\"memo.jsonl.tmp\"), body)?;
    fs::rename(dir.join(\"memo.jsonl.tmp\"), dir.join(\"memo.jsonl\"))?;
    let _f = File::create(dir.join(\"jobs\").join(\"k.json\"))?;
    let _o = OpenOptions::new().append(true).open(dir.join(\"memo.jsonl\"))?;
    fs::remove_file(dir.join(\"jobs\").join(\"k.cancel\"))?;
    Ok(())
}
";
    let fs = lint_source("crates/serve/src/server.rs", src);
    let hits = rules_at(&fs, "store-lock-discipline");
    assert_eq!(hits.len(), 6, "{fs:?}");
    assert_eq!(hits[0], (3, 9));
    assert!(fs
        .iter()
        .filter(|f| f.rule == "store-lock-discipline")
        .all(|f| f.severity == Severity::Error));
}

#[test]
fn store_lock_discipline_is_scoped_to_serve_outside_store_rs() {
    let src = "\
fn f(p: &std::path::Path) {
    let _ = std::fs::write(p, \"x\");
}
";
    // store.rs itself holds the locked accessors — allowed.
    assert!(lint_source("crates/serve/src/store.rs", src)
        .iter()
        .all(|f| f.rule != "store-lock-discipline"));
    // Other crates manage their own files — out of scope.
    assert!(lint_source("crates/cli/src/commands.rs", src)
        .iter()
        .all(|f| f.rule != "store-lock-discipline"));
    // Serve test code is excluded like every other rule.
    let test_src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _ = std::fs::remove_dir_all(\"d\");
    }
}
";
    assert!(lint_source("crates/serve/src/server.rs", test_src).is_empty());
}
