//! The brace-aware syntax layer: an item tree over the token stream.
//!
//! The lexer knows what is code; this module knows *where* code lives.
//! It walks the code-token stream of one file tracking `mod` / `impl` /
//! `trait` / `fn` nesting and extracts, per function body, the **facts**
//! the workspace-level analyses consume:
//!
//! * **call sites** — `name(...)`, `path::name(...)`, `.name(...)`,
//!   recorded by simple callee name (resolution happens in
//!   [`crate::graph`]);
//! * **lock acquisitions** — `recv.lock()` on a `Mutex` (identified by
//!   the receiver chain, scoped to the surrounding `impl` type or file)
//!   and flock-style named locks (`recv.lock("name", …)` /
//!   `recv.try_lock(…)` with a string-literal name → `flock:<name>`);
//! * **ordered lock pairs** — lock B acquired while lock A's guard is
//!   still live (the edge material for the lock-order graph);
//! * **calls under a held guard** — so the graph pass can propagate
//!   "may acquire" sets interprocedurally;
//! * **panic sites** — `.unwrap()` / `.expect()` / `panic!`-family
//!   macros / serve-path slice indexing, mirrored from the
//!   `panic-surface` rule so reachability can escalate them.
//!
//! Guard lifetimes reuse the heuristic the per-file rules already trust:
//! a guard bound by `let` lives until its scope closes or it is
//! `drop`ped; a guard acquired as a temporary lives to the end of its
//! statement. Items inside `#[cfg(test)]` ranges are invisible, exactly
//! as they are to the per-file rules.

use crate::lexer::{TokKind, Token};

/// A call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Simple (last-segment) callee name.
    pub callee: String,
    /// 1-based line of the callee token.
    pub line: u32,
    /// 1-based byte column of the callee token.
    pub col: u32,
}

/// One lock acquisition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSite {
    /// Normalized lock identity (see module docs).
    pub id: String,
    /// 1-based line of the `lock` token.
    pub line: u32,
    /// 1-based byte column of the `lock` token.
    pub col: u32,
}

/// Lock `second` acquired while `first`'s guard was live, in one body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedPair {
    /// The lock already held.
    pub first: LockSite,
    /// The lock acquired under it.
    pub second: LockSite,
}

/// A call made while a lock guard was live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldCall {
    /// The held lock.
    pub lock: LockSite,
    /// Simple callee name.
    pub callee: String,
    /// 1-based line of the call.
    pub line: u32,
    /// 1-based byte column of the call.
    pub col: u32,
}

/// A potential panic site (what `panic-surface` flags), kept as a fact
/// so reachability analysis can escalate it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicSite {
    /// What can panic: `unwrap`, `expect`, `panic!`, `unreachable!`,
    /// `todo!`, `unimplemented!`, or `index`.
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

/// Everything the workspace analyses need to know about one function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FnFacts {
    /// The function's simple name.
    pub name: String,
    /// `Scope::path::name` — module and impl/trait scopes joined with `::`.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based line of the body's closing brace.
    pub end_line: u32,
    /// Every call site in the body, in source order.
    pub calls: Vec<CallSite>,
    /// Every lock acquisition in the body, in source order.
    pub acquires: Vec<LockSite>,
    /// Ordered held-pairs (`first` held while `second` acquired).
    pub pairs: Vec<OrderedPair>,
    /// Calls made while a guard was live.
    pub held_calls: Vec<HeldCall>,
    /// Potential panic sites.
    pub panics: Vec<PanicSite>,
}

/// The per-file fact set the graph pass consumes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileFacts {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// Facts for every non-test function with a body.
    pub fns: Vec<FnFacts>,
}

/// Keywords that look like `name(...)` call heads but are control flow.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "in", "as", "move", "ref", "mut",
    "else", "break", "continue", "where", "unsafe", "dyn", "impl", "use", "pub",
];

/// Mirror of the `panic-surface` rule's pre-bracket keyword list.
const PRE_BRACKET_KEYWORDS: &[&str] = &[
    "return", "break", "else", "in", "mut", "ref", "const", "static", "as", "move", "yield",
];

/// Extracts the item tree and per-function facts from one file's code
/// tokens. `test_ranges` are 1-based inclusive line ranges covered by
/// `#[cfg(test)]` items; functions starting inside one are skipped.
pub fn extract(rel_path: &str, src: &str, code: &[Token], test_ranges: &[(u32, u32)]) -> FileFacts {
    let mut facts = FileFacts {
        rel_path: rel_path.to_string(),
        fns: Vec::with_capacity(16),
    };
    let stem = file_stem(rel_path);
    let in_serve = rel_path.starts_with("crates/serve/");
    let mut walker = Walker {
        src,
        code,
        stem,
        in_serve,
        test_ranges,
        out: &mut facts,
    };
    walker.items(0, code.len(), &mut Vec::with_capacity(4));
    facts
}

/// `crates/serve/src/event.rs` → `event`.
fn file_stem(rel_path: &str) -> &str {
    rel_path
        .rsplit('/')
        .next()
        .and_then(|f| f.split('.').next())
        .unwrap_or(rel_path)
}

struct Walker<'a> {
    src: &'a str,
    code: &'a [Token],
    stem: &'a str,
    in_serve: bool,
    test_ranges: &'a [(u32, u32)],
    out: &'a mut FileFacts,
}

impl Walker<'_> {
    fn text(&self, i: usize) -> &str {
        self.code.get(i).map_or("", |t| t.text(self.src))
    }

    fn is_ident(&self, i: usize) -> bool {
        self.code.get(i).is_some_and(|t| t.kind == TokKind::Ident)
    }

    /// Index of the matching `}` for the `{` at `open`, or the last token.
    fn close_of(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut k = open;
        while k < self.code.len() {
            match self.text(k) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        self.code.len().saturating_sub(1)
    }

    /// Walks items in `[i, end)`, `scope` being the enclosing mod/impl path.
    fn items(&mut self, mut i: usize, end: usize, scope: &mut Vec<String>) {
        while i < end {
            match self.text(i) {
                "mod" if self.is_ident(i + 1) && self.text(i + 2) == "{" => {
                    let name = self.text(i + 1).to_string();
                    let close = self.close_of(i + 2);
                    scope.push(name);
                    self.items(i + 3, close, scope);
                    scope.pop();
                    i = close + 1;
                }
                kw @ ("impl" | "trait") => {
                    // Type name: the last ident before the body `{` (after
                    // `for` when present), skipping generics.
                    let mut name = String::new();
                    let mut j = i + 1;
                    let mut angle = 0i32;
                    while j < end {
                        match self.text(j) {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            "{" if angle <= 0 => break,
                            ";" if angle <= 0 => break, // `impl Trait for T;`-ish
                            "for" => name.clear(),
                            t if self.is_ident(j) && angle <= 0 && t != "where" => {
                                name = t.to_string();
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if self.text(j) == "{" {
                        let close = self.close_of(j);
                        scope.push(if name.is_empty() {
                            kw.to_string()
                        } else {
                            name
                        });
                        self.items(j + 1, close, scope);
                        scope.pop();
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                }
                "fn" if self.is_ident(i + 1) => {
                    let name = self.text(i + 1).to_string();
                    let fn_line = self.code[i].line;
                    // Body `{` (or `;` for a bodiless declaration). The
                    // signature may contain `(`/`<`; no `{` appears in it.
                    let mut j = i + 2;
                    while j < end && self.text(j) != "{" && self.text(j) != ";" {
                        j += 1;
                    }
                    if self.text(j) == "{" {
                        let close = self.close_of(j);
                        let skip = self
                            .test_ranges
                            .iter()
                            .any(|&(a, b)| fn_line >= a && fn_line <= b);
                        if !skip {
                            let qual = if scope.is_empty() {
                                name.clone()
                            } else {
                                format!("{}::{}", scope.join("::"), name)
                            };
                            let end_line = self.code.get(close).map_or(fn_line, |t| t.line);
                            let mut f = FnFacts {
                                name,
                                qual,
                                line: fn_line,
                                end_line,
                                ..FnFacts::default()
                            };
                            self.body_facts(j + 1, close, &mut f);
                            self.out.fns.push(f);
                        }
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                }
                _ => i += 1,
            }
        }
    }

    /// The receiver chain ending at the `.` before index `dot` (walking
    /// backwards over `ident . ident …`), e.g. `self.state`. An index
    /// step (`self.shards[i].lock()`) is normalized to `name[_]`, so
    /// every element of a sharded lock array shares one identity.
    fn receiver_chain(&self, dot: usize) -> String {
        let mut parts: Vec<String> = Vec::with_capacity(4);
        let mut k = dot; // index of the `.`
        loop {
            if k == 0 {
                break;
            }
            let mut prev = k - 1;
            let mut suffix = "";
            if self.text(prev) == "]" {
                // Walk back over the `[...]` to the indexed receiver.
                let mut nest = 0i32;
                while prev > 0 {
                    match self.text(prev) {
                        "]" => nest += 1,
                        "[" => {
                            nest -= 1;
                            if nest == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    prev -= 1;
                }
                if prev == 0 {
                    break;
                }
                prev -= 1;
                suffix = "[_]";
            }
            if self.is_ident(prev) {
                parts.push(format!("{}{suffix}", self.text(prev)));
                if prev >= 2 && self.text(prev - 1) == "." {
                    k = prev - 1;
                    continue;
                }
            }
            break;
        }
        parts.reverse();
        parts.join(".")
    }

    /// Normalizes a lock receiver into a lock identity: `self.x` scoped
    /// to the impl type, bare locals scoped to the file stem.
    fn lock_id(&self, chain: &str, scope_ty: &str) -> String {
        if let Some(field) = chain.strip_prefix("self.") {
            let owner = if scope_ty.is_empty() {
                self.stem
            } else {
                scope_ty
            };
            format!("{owner}.{field}")
        } else if chain.is_empty() || chain == "self" {
            format!("{}.<expr>", self.stem)
        } else {
            format!("{}.{chain}", self.stem)
        }
    }

    /// Scans one function body, tracking guards and emitting facts.
    #[allow(clippy::too_many_lines)]
    fn body_facts(&mut self, start: usize, end: usize, f: &mut FnFacts) {
        struct Guard {
            name: String, // binding name, or "" for a statement temporary
            depth: i32,
            stmt: bool, // dies at the next `;` at its depth
            site: LockSite,
        }
        let scope_ty = f.qual.rsplit("::").nth(1).unwrap_or("").to_string();
        let mut guards: Vec<Guard> = Vec::with_capacity(4);
        let mut depth = 0i32;
        // The binding name of the `let` statement currently being
        // scanned, consumed by the next `.lock()` in that statement.
        let mut pending_let: Option<String> = None;
        let mut pending_let_depth = 0i32;
        let mut i = start;
        while i < end {
            let text = self.text(i);
            let tok = &self.code[i];
            match text {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.depth <= depth);
                    if pending_let.is_some() && depth < pending_let_depth {
                        pending_let = None;
                    }
                }
                ";" => {
                    guards.retain(|g| !(g.stmt && g.depth == depth));
                    pending_let = None;
                }
                "let" if tok.kind == TokKind::Ident => {
                    let mut k = i + 1;
                    if self.text(k) == "mut" {
                        k += 1;
                    }
                    if self.is_ident(k) {
                        pending_let = Some(self.text(k).to_string());
                        pending_let_depth = depth;
                    }
                }
                "drop" if tok.kind == TokKind::Ident && self.text(i + 1) == "(" => {
                    let dropped = self.text(i + 2).to_string();
                    guards.retain(|g| g.name != dropped);
                }
                _ => {}
            }
            if tok.kind == TokKind::Ident {
                let prev_dot = i >= 1 && self.text(i - 1) == ".";
                let next_paren = self.text(i + 1) == "(";

                // Lock acquisitions: `.lock()` (Mutex), `.lock("name",…)` /
                // `.try_lock(…)` (flock-style named locks).
                let is_lock_call = prev_dot && next_paren && (text == "lock" || text == "try_lock");
                if is_lock_call {
                    let id = if self.text(i + 2) == ")" && text == "lock" {
                        // Zero-arg `.lock()`: a Mutex.
                        let chain = self.receiver_chain(i - 1);
                        self.lock_id(&chain, &scope_ty)
                    } else {
                        // Named (flock) lock: identity from the first
                        // string literal in the argument list, with
                        // interpolation holes wildcarded.
                        let mut k = i + 2;
                        let mut nest = 1i32;
                        let mut lit = None;
                        while k < end && nest > 0 {
                            match self.text(k) {
                                "(" => nest += 1,
                                ")" => nest -= 1,
                                _ => {
                                    if lit.is_none() && self.code[k].kind == TokKind::StrLit {
                                        lit = Some(self.text(k).to_string());
                                    }
                                }
                            }
                            k += 1;
                        }
                        match lit {
                            Some(l) => format!("flock:{}", wildcard_holes(l.trim_matches('"'))),
                            None => format!("flock:{}:{}", self.stem, tok.line),
                        }
                    };
                    let site = LockSite {
                        id,
                        line: tok.line,
                        col: tok.col,
                    };
                    for g in &guards {
                        f.pairs.push(OrderedPair {
                            first: g.site.clone(),
                            second: site.clone(),
                        });
                    }
                    f.acquires.push(site.clone());
                    let (name, stmt) = match pending_let.take() {
                        Some(n) => (n, false),
                        None => (String::new(), true),
                    };
                    guards.push(Guard {
                        name,
                        depth,
                        stmt,
                        site,
                    });
                    i += 1;
                    continue;
                }

                // Call sites: `name(` where name is not control flow, not
                // a macro head (`name!`), and not `fn name(`.
                let is_decl = i >= 1 && self.text(i - 1) == "fn";
                if next_paren && !is_decl && !NON_CALL_KEYWORDS.contains(&text) && text != "drop" {
                    f.calls.push(CallSite {
                        callee: text.to_string(),
                        line: tok.line,
                        col: tok.col,
                    });
                    for g in &guards {
                        f.held_calls.push(HeldCall {
                            lock: g.site.clone(),
                            callee: text.to_string(),
                            line: tok.line,
                            col: tok.col,
                        });
                    }
                }

                // Panic sites, mirrored from panic-surface.
                if (text == "unwrap" || text == "expect") && prev_dot && next_paren {
                    let after_lock = i >= 4
                        && self.text(i - 4) == "lock"
                        && self.text(i - 3) == "("
                        && self.text(i - 2) == ")";
                    if !after_lock {
                        f.panics.push(PanicSite {
                            what: text.to_string(),
                            line: tok.line,
                            col: tok.col,
                        });
                    }
                }
                if matches!(text, "panic" | "unreachable" | "todo" | "unimplemented")
                    && self.text(i + 1) == "!"
                {
                    f.panics.push(PanicSite {
                        what: format!("{text}!"),
                        line: tok.line,
                        col: tok.col,
                    });
                }
            }
            // Serve-path slice indexing, mirrored from panic-surface.
            if self.in_serve && tok.kind == TokKind::Punct && text == "[" && i >= 1 {
                let prev = &self.code[i - 1];
                let prev_text = self.text(i - 1);
                let indexes = match prev.kind {
                    TokKind::Ident => !PRE_BRACKET_KEYWORDS.contains(&prev_text),
                    TokKind::Punct => matches!(prev_text, ")" | "]" | "?"),
                    _ => false,
                };
                if indexes {
                    f.panics.push(PanicSite {
                        what: "index".to_string(),
                        line: tok.line,
                        col: tok.col,
                    });
                }
            }
            i += 1;
        }
    }
}

/// `job-{key}` → `job-*`, so every per-job flock shares one identity.
fn wildcard_holes(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut depth = 0usize;
    for c in name.chars() {
        match c {
            '{' => {
                depth += 1;
                if depth == 1 {
                    out.push('*');
                }
            }
            '}' => depth = depth.saturating_sub(1),
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn facts(path: &str, src: &str) -> FileFacts {
        let tokens = lex(src);
        let code: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).cloned().collect();
        extract(path, src, &code, &[])
    }

    #[test]
    fn item_tree_quals_mod_impl_fn() {
        let src = "\
mod inner {
    struct S;
    impl S {
        fn method(&self) { helper(); }
    }
    fn helper() {}
}
fn top() {}
";
        let f = facts("crates/demo/src/lib.rs", src);
        let quals: Vec<&str> = f.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, ["inner::S::method", "inner::helper", "top"]);
        assert_eq!(f.fns[0].calls.len(), 1);
        assert_eq!(f.fns[0].calls[0].callee, "helper");
    }

    #[test]
    fn impl_trait_for_type_takes_the_type_name() {
        let src = "\
impl<T: Clone> Display for Wrapper<T> {
    fn fmt(&self) { self.m.lock(); }
}
";
        let f = facts("crates/demo/src/x.rs", src);
        assert_eq!(f.fns[0].qual, "Wrapper::fmt");
        assert_eq!(f.fns[0].acquires[0].id, "Wrapper.m");
    }

    #[test]
    fn ordered_pairs_track_guard_lifetimes() {
        let src = "\
fn f(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let g1 = a.lock();
    let g2 = b.lock();
    drop(g1);
    drop(g2);
}
fn scoped(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    { let g1 = a.lock(); }
    let g2 = b.lock();
}
";
        let f = facts("crates/demo/src/x.rs", src);
        assert_eq!(f.fns[0].pairs.len(), 1);
        assert_eq!(f.fns[0].pairs[0].first.id, "x.a");
        assert_eq!(f.fns[0].pairs[0].second.id, "x.b");
        // Scope exit released g1 before g2 was acquired.
        assert!(f.fns[1].pairs.is_empty());
    }

    #[test]
    fn statement_temporary_guard_dies_at_semicolon() {
        let src = "\
fn f(&self) {
    self.q.lock().push_back(1);
    let g = self.other.lock();
}
";
        let f = facts("crates/demo/src/x.rs", src);
        // The temporary guard on line 2 is gone by line 3: no pair.
        assert!(f.fns[0].pairs.is_empty(), "{:?}", f.fns[0].pairs);
        assert_eq!(f.fns[0].acquires.len(), 2);
    }

    #[test]
    fn flock_ids_come_from_string_literals_with_holes_wildcarded() {
        let src = "\
fn f(&self, key: &str) {
    let a = self.store.lock(\"store\", &|| false);
    let b = self.store.try_lock(&format!(\"job-{key}\"));
}
";
        let f = facts("crates/serve/src/x.rs", src);
        let ids: Vec<&str> = f.fns[0].acquires.iter().map(|a| a.id.as_str()).collect();
        assert_eq!(ids, ["flock:store", "flock:job-*"]);
        assert_eq!(f.fns[0].pairs.len(), 1);
    }

    #[test]
    fn held_calls_and_panics_are_recorded() {
        let src = "\
fn f(&self, x: Option<u32>) {
    let g = self.state.lock();
    compute(x);
    drop(g);
    let v = x.unwrap();
    buf[0] = v;
}
";
        let f = facts("crates/serve/src/x.rs", src);
        let hc = &f.fns[0].held_calls;
        assert!(hc.iter().any(|h| h.callee == "compute"));
        // After drop(g) the unwrap is not under the guard.
        assert!(!hc.iter().any(|h| h.callee == "unwrap"));
        let whats: Vec<&str> = f.fns[0].panics.iter().map(|p| p.what.as_str()).collect();
        assert_eq!(whats, ["unwrap", "index"]);
    }

    #[test]
    fn indexed_receivers_share_one_identity() {
        let src = "\
impl Lru {
    fn get(&self, i: usize, j: usize) {
        let a = self.shards[i].lock();
        drop(a);
        let b = self.shards[j].lock();
    }
}
";
        let f = facts("crates/serve/src/lru.rs", src);
        let ids: Vec<&str> = f.fns[0].acquires.iter().map(|a| a.id.as_str()).collect();
        assert_eq!(ids, ["Lru.shards[_]", "Lru.shards[_]"]);
        assert!(f.fns[0].pairs.is_empty());
    }

    #[test]
    fn test_ranges_exclude_functions() {
        let src = "\
fn live() {}
fn test_like() { x.unwrap(); }
";
        let tokens = lex(src);
        let code: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).cloned().collect();
        let f = extract("crates/demo/src/x.rs", src, &code, &[(2, 2)]);
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "live");
    }

    #[test]
    fn bodiless_and_nested_items_do_not_derail_the_walk() {
        let src = "\
trait T {
    fn decl(&self);
    fn with_default(&self) { self.decl(); }
}
extern \"C\" {
    fn c_fn(x: i32) -> i32;
}
fn after() {}
";
        let f = facts("crates/demo/src/x.rs", src);
        let names: Vec<&str> = f.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["with_default", "after"]);
        assert_eq!(f.fns[0].qual, "T::with_default");
    }
}
