//! A token-level lexer for Rust source, built for linting rather than
//! compilation.
//!
//! The lexer's one job is to be *right about what is code and what is
//! not*: raw strings (`r#"…"#`, any number of hashes, with `b`/`br`
//! prefixes), nested block comments (`/* /* */ */`), char literals vs.
//! lifetimes (`'a'` vs `'a`), doc comments, and `//` sequences inside
//! string literals must never confuse a rule into flagging text that the
//! compiler would treat as data. Everything else — numbers, identifiers,
//! punctuation — is lexed loosely; rules match token *sequences*, not
//! grammar.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (including raw identifiers, `r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static` (no closing quote).
    Lifetime,
    /// A character literal: `'x'`, `'\n'`, `'\''`.
    CharLit,
    /// A string literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br#"…"#`.
    StrLit,
    /// A numeric literal (lexed loosely: `0xFF`, `1_000`, `1.5e-3`).
    Num,
    /// `// …` to end of line. `is_doc` marks `///` and `//!`.
    LineComment,
    /// `/* … */`, nesting tracked. `is_doc` marks `/**` and `/*!`.
    BlockComment,
    /// `::`, `=>`, or a single punctuation character.
    Punct,
}

/// One lexed token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The lexeme class.
    pub kind: TokKind,
    /// Byte offset of the token's first byte.
    pub start: usize,
    /// Byte offset one past the token's last byte.
    pub end: usize,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based byte column of the token's first byte.
    pub col: u32,
    /// Whether a comment token is a doc comment (`///`, `//!`, `/**`,
    /// `/*!`). Always `false` for non-comments.
    pub is_doc: bool,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// Whether this token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lexes `src` into tokens. Never fails: unterminated literals and
/// comments extend to end-of-input (lint input may be mid-edit), and
/// bytes the lexer does not understand become single-char `Punct`s.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    fn run(mut self) -> Vec<Token> {
        // Rust source averages roughly one token per 6 bytes; reserving
        // up front keeps the hottest loop in the analyzer realloc-free.
        let mut out = Vec::with_capacity(self.src.len() / 6 + 8);
        while self.pos < self.src.len() {
            let b = self.peek(0);
            if b.is_ascii_whitespace() {
                self.bump();
                continue;
            }
            let (start, line, col) = (self.pos, self.line, self.col);
            let (kind, is_doc) = self.next_kind();
            out.push(Token {
                kind,
                start,
                end: self.pos,
                line,
                col,
                is_doc,
            });
        }
        out
    }

    fn next_kind(&mut self) -> (TokKind, bool) {
        let b = self.peek(0);
        // Comments first: they swallow arbitrary text.
        if b == b'/' && self.peek(1) == b'/' {
            return self.line_comment();
        }
        if b == b'/' && self.peek(1) == b'*' {
            return self.block_comment();
        }
        // Raw strings and raw identifiers share the `r`/`br` prefix.
        if (b == b'r' && matches!(self.peek(1), b'"' | b'#'))
            || (b == b'b' && self.peek(1) == b'r' && matches!(self.peek(2), b'"' | b'#'))
        {
            if let Some(kind) = self.raw_string_or_ident() {
                return (kind, false);
            }
        }
        if b == b'"' || (b == b'b' && self.peek(1) == b'"') {
            if b == b'b' {
                self.bump();
            }
            return (self.quoted_string(), false);
        }
        if b == b'\'' {
            return (self.char_or_lifetime(), false);
        }
        if b.is_ascii_digit() {
            return (self.number(), false);
        }
        if b == b'_' || b.is_ascii_alphabetic() {
            while {
                let c = self.peek(0);
                c == b'_' || c.is_ascii_alphanumeric()
            } {
                self.bump();
            }
            return (TokKind::Ident, false);
        }
        // Multi-char puncts the rules care about; everything else single.
        if (b == b':' && self.peek(1) == b':') || (b == b'=' && self.peek(1) == b'>') {
            self.bump();
            self.bump();
            return (TokKind::Punct, false);
        }
        self.bump();
        (TokKind::Punct, false)
    }

    fn line_comment(&mut self) -> (TokKind, bool) {
        // `///` and `//!` are docs, but `////…` is a plain comment.
        let is_doc = (self.peek(2) == b'/' && self.peek(3) != b'/') || self.peek(2) == b'!';
        while self.pos < self.src.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        (TokKind::LineComment, is_doc)
    }

    fn block_comment(&mut self) -> (TokKind, bool) {
        // `/**` (not `/***` or the empty `/**/`) and `/*!` are docs.
        let is_doc = (self.peek(2) == b'*' && self.peek(3) != b'*' && self.peek(3) != b'/')
            || self.peek(2) == b'!';
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while self.pos < self.src.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        (TokKind::BlockComment, is_doc)
    }

    /// Lexes `r"…"`, `r#…#"…"#…#`, `br"…"` — or backtracks to a raw
    /// identifier (`r#match`) when the hashes are not followed by a quote.
    fn raw_string_or_ident(&mut self) -> Option<TokKind> {
        let rollback = (self.pos, self.line, self.col);
        if self.peek(0) == b'b' {
            self.bump();
        }
        self.bump(); // the `r`
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            // `r#ident` — rewind and let the ident path lex it whole.
            (self.pos, self.line, self.col) = rollback;
            if hashes >= 1 {
                self.bump(); // r
                self.bump(); // #
                while {
                    let c = self.peek(0);
                    c == b'_' || c.is_ascii_alphanumeric()
                } {
                    self.bump();
                }
                return Some(TokKind::Ident);
            }
            return None;
        }
        self.bump(); // opening quote
        loop {
            if self.pos >= self.src.len() {
                break; // unterminated: extend to EOF
            }
            if self.bump() == b'"' {
                let mut closing = 0usize;
                while closing < hashes && self.peek(0) == b'#' {
                    closing += 1;
                    self.bump();
                }
                if closing == hashes {
                    break;
                }
            }
        }
        Some(TokKind::StrLit)
    }

    fn quoted_string(&mut self) -> TokKind {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump(); // escaped char, including \" and \\
                }
                b'"' => break,
                _ => {}
            }
        }
        TokKind::StrLit
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime): after the quote,
    /// an escape is always a char; otherwise it is a char only when a
    /// closing quote follows exactly one character later.
    fn char_or_lifetime(&mut self) -> TokKind {
        self.bump(); // opening quote
        if self.peek(0) == b'\\' {
            self.bump();
            self.bump();
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump(); // `'\u{1F600}'`-style escapes
            }
            self.bump();
            return TokKind::CharLit;
        }
        // Multibyte UTF-8 chars: find where the next char ends.
        let mut len = 1usize;
        while len < 4 && (self.peek(len) & 0b1100_0000) == 0b1000_0000 {
            len += 1;
        }
        if self.peek(len) == b'\'' {
            for _ in 0..=len {
                self.bump();
            }
            return TokKind::CharLit;
        }
        while {
            let c = self.peek(0);
            c == b'_' || c.is_ascii_alphanumeric()
        } {
            self.bump();
        }
        TokKind::Lifetime
    }

    fn number(&mut self) -> TokKind {
        self.bump();
        loop {
            let c = self.peek(0);
            if c == b'_' || c.is_ascii_alphanumeric() {
                self.bump();
            } else if c == b'.' && self.peek(1).is_ascii_digit() {
                self.bump(); // `1.5`, but not `1..n` or `1.method()`
            } else if (c == b'+' || c == b'-')
                && matches!(self.src.get(self.pos - 1), Some(b'e' | b'E'))
            {
                self.bump(); // `1e-3`
            } else {
                break;
            }
        }
        TokKind::Num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("let x = a.unwrap();");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["let", "x", "=", "a", ".", "unwrap", "(", ")", ";"]);
    }

    #[test]
    fn double_colon_and_fat_arrow_are_single_tokens() {
        let ks = kinds("Arch::Tc => 1");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts, ["Arch", "::", "Tc", "=>", "1"]);
    }

    #[test]
    fn raw_string_with_unwrap_inside_is_one_string() {
        let src = r##"let s = r#"x.unwrap() // not code"#; s"##;
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::StrLit && t.contains("unwrap")));
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokKind::Ident).count(),
            3, // let, s, s — and no `unwrap`
            "{ks:?}"
        );
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let ks = kinds("a /* outer /* inner */ still comment */ b");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts.first().copied(), Some("a"));
        assert_eq!(texts.last().copied(), Some("b"));
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[1].0, TokKind::BlockComment);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let ks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::CharLit).count(), 1);
    }

    #[test]
    fn escaped_char_literals() {
        for lit in ["'\\''", "'\\\\'", "'\\n'", "'\\u{1F600}'"] {
            let ks = kinds(lit);
            assert_eq!(ks.len(), 1, "{lit}");
            assert_eq!(ks[0].0, TokKind::CharLit, "{lit}");
        }
    }

    #[test]
    fn slashes_inside_strings_are_not_comments() {
        let ks = kinds(r#"let url = "https://example.com"; x"#);
        assert!(ks.iter().all(|(k, _)| *k != TokKind::LineComment));
        assert!(ks.iter().any(|(_, t)| t.contains("example.com")));
        assert_eq!(ks.last().map(|(_, t)| t.as_str()), Some("x"));
    }

    #[test]
    fn doc_comments_are_marked() {
        let toks = lex("/// doc\n//! inner\n// plain\n//// not doc\n/** blockdoc */ /* plain */");
        let docs: Vec<bool> = toks.iter().map(|t| t.is_doc).collect();
        assert_eq!(docs, [true, true, false, false, true, false]);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let ks = kinds("let r#match = 1;");
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "r#match"));
    }

    #[test]
    fn byte_and_hashed_raw_strings() {
        for src in [
            "br#\"//bytes \\ \"#",
            "r\"plain raw \\ \"",
            "r##\"has \"# inside\"##",
            "b\"bytes\\\"more\"",
        ] {
            let ks = kinds(src);
            assert_eq!(ks.len(), 1, "{src} -> {ks:?}");
            assert_eq!(ks[0].0, TokKind::StrLit, "{src}");
        }
    }

    #[test]
    fn unterminated_inputs_do_not_loop() {
        for src in ["\"open", "r#\"open", "/* open /* deeper", "'"] {
            let _ = lex(src); // must terminate
        }
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("a\n  bb\n\tc");
        let pos: Vec<(u32, u32)> = toks.iter().map(|t| (t.line, t.col)).collect();
        assert_eq!(pos, [(1, 1), (2, 3), (3, 2)]);
    }

    #[test]
    fn numbers_lex_loosely() {
        for src in ["0xFF", "1_000", "1.5e-3", "3usize", "1e6"] {
            let ks = kinds(src);
            assert_eq!(ks.len(), 1, "{src} -> {ks:?}");
            assert_eq!(ks[0].0, TokKind::Num, "{src}");
        }
    }
}
