//! `tbstc-lint` — the workspace's own static-analysis engine.
//!
//! The repo's core guarantees — bit-reproducible results, a panic-free
//! serve request path, contained `unsafe` — were previously enforced by
//! a CI `grep` and convention. This crate replaces both with a real
//! (if small) analyzer: a token-level Rust [`lexer`] that cannot be
//! fooled by raw strings, nested block comments, or `//` inside string
//! literals, and an [`engine`] that runs six [`rules`] over every
//! `crates/*/src/**/*.rs` file, producing `file:line:col` diagnostics
//! with severities, inline `// tbstc-lint: allow(<rule>)` suppressions,
//! and a checked-in baseline for grandfathered findings.
//!
//! The crate has zero dependencies (it hand-rolls its JSON output) so
//! every other crate — including `tbstc-bench`, which times it — can
//! depend on it without cycles.
//!
//! Run it as `tbstc-cli lint [--deny-warnings] [--json]`; see DESIGN.md
//! §10 for the rule-authoring guide.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{
    lint_source, lint_workspace, render_baseline, render_human, render_json, Finding, LintOptions,
    LintReport, Severity, BASELINE_FILE,
};
