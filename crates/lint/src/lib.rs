//! `tbstc-lint` — the workspace's own static-analysis engine.
//!
//! The repo's core guarantees — bit-reproducible results, a panic-free
//! serve request path, contained `unsafe` — were previously enforced by
//! a CI `grep` and convention. This crate replaces both with a real
//! (if small) analyzer: a token-level Rust [`lexer`] that cannot be
//! fooled by raw strings, nested block comments, or `//` inside string
//! literals; a brace-aware [`syntax`] layer that extracts an item tree
//! and per-function facts (calls, lock acquisitions, panic sites); a
//! [`graph`] module building the workspace call graph and the
//! lock-acquisition-order graph; and an [`engine`] that runs twelve
//! [`rules`] — ten per-file, two workspace-wide (`lock-order` deadlock
//! cycles, `panic-reachability` escalation) — over every
//! `crates/*/src/**/*.rs` file, producing `file:line:col` diagnostics
//! with severities, inline `// tbstc-lint: allow(<rule>)` suppressions,
//! and a checked-in, count-aware baseline for grandfathered findings.
//!
//! Around the core: [`cache`] makes warm re-runs near-zero via an
//! FNV-keyed per-file result cache, [`sarif`] renders SARIF 2.1.0 for
//! CI annotations, and [`fix`] applies mechanical remediation
//! (suppression insertion, baseline burndown).
//!
//! The crate has zero dependencies (it hand-rolls its JSON output) so
//! every other crate — including `tbstc-bench`, which times it — can
//! depend on it without cycles.
//!
//! Run it as `tbstc-cli lint [--deny-warnings] [--json] [--sarif]
//! [--fix] [--no-cache]`; see DESIGN.md §10 for the rule-authoring
//! guide and §15 for the structural analyses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod fix;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod sarif;
pub mod syntax;

pub use cache::fnv1a_128;
pub use engine::{
    analyze_source, lint_source, lint_texts, lint_workspace, render_baseline, render_human,
    render_json, FileAnalysis, Finding, LintOptions, LintReport, Severity, BASELINE_FILE,
};
pub use fix::{apply_fixes, FixOutcome};
pub use sarif::render_sarif;
