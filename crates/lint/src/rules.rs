//! The twelve workspace rules: ten per-file checks (pure functions over
//! a [`FileCtx`] pushing [`Finding`]s) and two workspace-level checks
//! (`lock-order`, `panic-reachability`) that run over the
//! [`crate::graph::Workspace`] built from every file's
//! [`crate::syntax`] facts. The engine applies test-code exclusion,
//! suppressions, and the baseline afterwards, so rules here report
//! every match they see.

use crate::engine::{FileCtx, Finding, Severity};
use crate::graph::{find_cycles, Workspace};
use crate::lexer::{TokKind, Token};

/// A named per-file check with a fixed severity story (rules may emit
/// both severities; the table's `check` decides per finding).
pub struct Rule {
    /// Kebab-case rule name, used in diagnostics, `allow(...)`, and the
    /// baseline file.
    pub name: &'static str,
    /// One-line description, surfaced in SARIF rule metadata.
    pub desc: &'static str,
    /// The check itself.
    pub check: fn(&FileCtx<'_>, &mut Vec<Finding>),
}

/// A workspace-level check over the call/lock graphs. Findings still
/// point at one file/line, so suppressions and the baseline apply
/// exactly as for per-file rules.
pub struct WorkspaceRule {
    /// Kebab-case rule name.
    pub name: &'static str,
    /// One-line description, surfaced in SARIF rule metadata.
    pub desc: &'static str,
    /// The check itself.
    pub check: fn(&Workspace<'_>, &mut Vec<Finding>),
}

/// Every per-file rule the engine knows, in reporting order.
pub const ALL_RULES: &[Rule] = &[
    Rule {
        name: "panic-surface",
        desc: "panicking call sites: .unwrap()/.expect(), panic!-family \
               macros, slice indexing on the serve request path",
        check: panic_surface,
    },
    Rule {
        name: "determinism",
        desc: "nondeterministic containers, wall clocks, and unseeded \
               entropy sources",
        check: determinism,
    },
    Rule {
        name: "lock-discipline",
        desc: "lock-poisoning panics and blocking I/O while a guard is \
               held",
        check: lock_discipline,
    },
    Rule {
        name: "arch-dispatch",
        desc: "Arch variant dispatch outside the sim registry modules",
        check: arch_dispatch,
    },
    Rule {
        name: "crate-hygiene",
        desc: "crate roots must carry #![forbid(unsafe_code)] or \
               #![deny(unsafe_code)]",
        check: crate_hygiene,
    },
    Rule {
        name: "unsafe-audit",
        desc: "unsafe only in allowlisted modules, every block justified \
               by a SAFETY: comment",
        check: unsafe_audit,
    },
    Rule {
        name: "hot-path-alloc",
        desc: "unsized Vec growth; push after Vec::new() on measured hot \
               paths",
        check: hot_path_alloc,
    },
    Rule {
        name: "blocking-in-event-loop",
        desc: "calls that park the serve event-loop thread",
        check: blocking_in_event_loop,
    },
    Rule {
        name: "spec-coverage",
        desc: "registry archs must bundle a tbstc.v1 spec document",
        check: spec_coverage,
    },
    Rule {
        name: "store-lock-discipline",
        desc: "shared-store filesystem writes must go through ResultStore \
               accessors",
        check: store_lock_discipline,
    },
];

/// Every workspace-level rule, in reporting order.
pub const WORKSPACE_RULES: &[WorkspaceRule] = &[
    WorkspaceRule {
        name: "lock-order",
        desc: "deadlock-risk cycles in the workspace lock-acquisition \
               graph (mutexes and flock(2) named locks)",
        check: lock_order,
    },
    WorkspaceRule {
        name: "panic-reachability",
        desc: "panic sites transitively reachable from the serve \
               event.rs/conn.rs request path",
        check: panic_reachability,
    },
];

/// The `&'static` spelling of a rule name, or `None` for an unknown
/// rule. The incremental cache stores findings as text and needs to
/// restore the `&'static str` the engine uses.
pub fn static_rule_name(name: &str) -> Option<&'static str> {
    ALL_RULES
        .iter()
        .map(|r| r.name)
        .chain(WORKSPACE_RULES.iter().map(|r| r.name))
        .find(|n| *n == name)
}

fn finding(
    rule: &'static str,
    severity: Severity,
    ctx: &FileCtx<'_>,
    t: &Token,
    message: String,
) -> Finding {
    Finding {
        rule,
        severity,
        path: ctx.rel_path.to_string(),
        line: t.line,
        col: t.col,
        message,
    }
}

// --- panic-surface ------------------------------------------------------

/// Keywords that may legally precede `[` without it being an index
/// expression (array literals and the like).
const PRE_BRACKET_KEYWORDS: &[&str] = &[
    "return", "break", "else", "in", "mut", "ref", "const", "static", "as", "move", "yield",
];

/// `.unwrap()` / `.expect()` / `panic!`-family macros anywhere, plus
/// slice indexing on the serve request path. Warning severity: existing
/// debt is baselined, new debt fails `--deny-warnings`.
fn panic_surface(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let code = ctx.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind == TokKind::Ident {
            let name = ctx.text(t);
            if (name == "unwrap" || name == "expect")
                && i >= 1
                && ctx.code_text(i - 1) == "."
                && ctx.code_text(i + 1) == "("
            {
                // `.lock().unwrap()` belongs to lock-discipline; don't
                // double-report.
                let after_lock = i >= 4
                    && ctx.code_is_ident(i - 4, "lock")
                    && ctx.code_text(i - 3) == "("
                    && ctx.code_text(i - 2) == ")";
                if !after_lock {
                    out.push(finding(
                        "panic-surface",
                        Severity::Warning,
                        ctx,
                        t,
                        format!(
                            ".{name}() can panic; return a typed error, use \
                             unwrap_or_else, or suppress with a reason"
                        ),
                    ));
                }
            }
            if matches!(name, "panic" | "unreachable" | "todo" | "unimplemented")
                && ctx.code_text(i + 1) == "!"
            {
                out.push(finding(
                    "panic-surface",
                    Severity::Warning,
                    ctx,
                    t,
                    format!("{name}! aborts the worker; return a typed error instead"),
                ));
            }
        }
        // Index expressions only on the serve request path: `expr[...]`
        // where the previous code token ends an expression.
        if ctx.crate_name == "serve" && t.kind == TokKind::Punct && ctx.text(t) == "[" && i >= 1 {
            let prev = &code[i - 1];
            let prev_text = ctx.text(prev);
            let indexes = match prev.kind {
                TokKind::Ident => !PRE_BRACKET_KEYWORDS.contains(&prev_text),
                TokKind::Punct => matches!(prev_text, ")" | "]" | "?"),
                _ => false,
            };
            if indexes {
                out.push(finding(
                    "panic-surface",
                    Severity::Warning,
                    ctx,
                    t,
                    "slice indexing can panic on the request path; use .get(..) \
                     and map None to an HTTP error"
                        .to_string(),
                ));
            }
        }
    }
}

// --- determinism --------------------------------------------------------

/// Hash-ordered containers and wall-clock/entropy sources. Warnings:
/// call sites where ordering provably never escapes carry a suppression
/// explaining why.
fn determinism(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for (i, t) in ctx.code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match ctx.text(t) {
            name @ ("HashMap" | "HashSet") => out.push(finding(
                "determinism",
                Severity::Warning,
                ctx,
                t,
                format!(
                    "{name} iteration order is nondeterministic; use BTree{} or \
                     suppress with a reason why ordering never reaches output",
                    &name[4..]
                ),
            )),
            "SystemTime" if ctx.code_text(i + 1) == "::" && ctx.code_is_ident(i + 2, "now") => out
                .push(finding(
                    "determinism",
                    Severity::Warning,
                    ctx,
                    t,
                    "SystemTime::now() makes results time-dependent; thread a \
                     clock or timestamp in from the caller"
                        .to_string(),
                )),
            name @ ("thread_rng" | "from_entropy") => out.push(finding(
                "determinism",
                Severity::Warning,
                ctx,
                t,
                format!("{name} draws unseeded entropy; derive the RNG from an explicit seed"),
            )),
            _ => {}
        }
    }
}

// --- lock-discipline ----------------------------------------------------

/// Blocking calls that must not run while a `MutexGuard` is live.
const IO_IDENTS: &[&str] = &[
    "write_all",
    "write_fmt",
    "flush",
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "recv",
    "recv_timeout",
    "sync_all",
    "sync_data",
    "copy",
    "accept",
];

/// (a) `.lock().unwrap()` / `.lock().expect()` anywhere — an error:
/// poisoning must be handled (recover or surface HTTP 500), never
/// propagated as a panic. (b) In `crates/serve`/`crates/runner`, a
/// heuristic: an identifier bound from a `.lock()` call is treated as a
/// live guard until its scope closes or it is `drop`ped; `.`-method I/O
/// or channel calls inside that window are warnings.
fn lock_discipline(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let code = ctx.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind == TokKind::Ident
            && ctx.text(t) == "lock"
            && i >= 1
            && ctx.code_text(i - 1) == "."
            && ctx.code_text(i + 1) == "("
            && ctx.code_text(i + 2) == ")"
            && ctx.code_text(i + 3) == "."
            && (ctx.code_is_ident(i + 4, "unwrap") || ctx.code_is_ident(i + 4, "expect"))
        {
            out.push(finding(
                "lock-discipline",
                Severity::Error,
                ctx,
                t,
                ".lock().unwrap()/.expect() panics on poison; recover with \
                 unwrap_or_else(PoisonError::into_inner) or map to an error"
                    .to_string(),
            ));
        }
    }

    if ctx.crate_name != "serve" && ctx.crate_name != "runner" {
        return;
    }

    struct Guard {
        name: String,
        depth: i32,
    }
    let mut guards: Vec<Guard> = Vec::with_capacity(4);
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < code.len() {
        let text = ctx.code_text(i);
        match text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            "let" if code[i].kind == TokKind::Ident => {
                // Scan the statement for a `.lock()` call; bind the first
                // ident after `let` (skipping `mut`) as a guard if found.
                let mut name = None;
                let mut k = i + 1;
                if ctx.code_is_ident(k, "mut") {
                    k += 1;
                }
                if code.get(k).is_some_and(|t| t.kind == TokKind::Ident) {
                    name = Some(ctx.code_text(k).to_string());
                }
                let mut nest = 0i32;
                let mut locks = false;
                let mut j = i + 1;
                while j < code.len() {
                    match ctx.code_text(j) {
                        "{" | "(" | "[" => nest += 1,
                        "}" | ")" | "]" => nest -= 1,
                        ";" if nest <= 0 => break,
                        "lock" if ctx.code_text(j.wrapping_sub(1)) == "." => locks = true,
                        _ => {}
                    }
                    j += 1;
                }
                if locks {
                    if let Some(name) = name {
                        guards.push(Guard { name, depth });
                    }
                }
            }
            "drop" if ctx.code_text(i + 1) == "(" => {
                let dropped = ctx.code_text(i + 2).to_string();
                guards.retain(|g| g.name != dropped);
            }
            _ => {
                let t = &code[i];
                if t.kind == TokKind::Ident
                    && IO_IDENTS.contains(&text)
                    && i >= 1
                    && ctx.code_text(i - 1) == "."
                    && ctx.code_text(i + 1) == "("
                {
                    if let Some(g) = guards.last() {
                        out.push(finding(
                            "lock-discipline",
                            Severity::Warning,
                            ctx,
                            t,
                            format!(
                                ".{text}() while `{}` holds a lock guard blocks every \
                                 other thread on that mutex; drop the guard first",
                                g.name
                            ),
                        ));
                    }
                }
            }
        }
        i += 1;
    }
}

// --- arch-dispatch ------------------------------------------------------

/// The `Arch` enum's variants, mirrored from `crates/core`.
const ARCH_VARIANTS: &[&str] = &[
    "Tc",
    "Stc",
    "Vegeta",
    "Highlight",
    "RmStc",
    "TbStc",
    "DvpeFan",
    "Sgcn",
];

/// Variant-level dispatch on `Arch` (a match arm or or-pattern naming a
/// variant) outside `crates/sim/src/archs/` — everything else must go
/// through the `ArchModel` registry so adding a baseline stays a
/// one-module change. Error severity: this is the PR 4 CI grep, upgraded.
fn arch_dispatch(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.rel_path.starts_with("crates/sim/src/archs/") {
        return;
    }
    for (i, t) in ctx.code.iter().enumerate() {
        if t.kind != TokKind::Ident || ctx.text(t) != "Arch" || ctx.code_text(i + 1) != "::" {
            continue;
        }
        let variant = ctx.code_text(i + 2);
        if !ARCH_VARIANTS.contains(&variant) {
            continue;
        }
        let next = ctx.code_text(i + 3);
        if next == "=>" || next == "|" {
            out.push(finding(
                "arch-dispatch",
                Severity::Error,
                ctx,
                t,
                format!(
                    "dispatch on Arch::{variant} outside crates/sim/src/archs/; \
                     route through the ArchModel registry"
                ),
            ));
        }
    }
}

// --- crate-hygiene ------------------------------------------------------

/// Crate roots must pin down `unsafe`: `#![forbid(unsafe_code)]` or
/// `#![deny(unsafe_code)]` at the top. (Per-block `unsafe` auditing
/// lives in `unsafe-audit`.)
fn crate_hygiene(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_crate_root && !has_unsafe_code_attr(ctx) {
        let at = ctx.code.first().cloned().unwrap_or(Token {
            kind: TokKind::Punct,
            start: 0,
            end: 0,
            line: 1,
            col: 1,
            is_doc: false,
        });
        out.push(finding(
            "crate-hygiene",
            Severity::Error,
            ctx,
            &at,
            "crate root lacks #![forbid(unsafe_code)] (or #![deny(unsafe_code)] \
             when a module legitimately needs unsafe)"
                .to_string(),
        ));
    }
}

// --- unsafe-audit -------------------------------------------------------

/// The only modules allowed to contain `unsafe` at all: the serve
/// crate's raw-syscall shims (poll(2), signalfd-style self-pipe,
/// flock(2)). Everything else forbids unsafe_code at the crate root.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/serve/src/event.rs",
    "crates/serve/src/signal.rs",
    "crates/serve/src/store.rs",
];

/// Every `unsafe` keyword must (a) live in an [`UNSAFE_ALLOWLIST`]
/// module and (b) carry a `SAFETY:` comment within the five preceding
/// lines. Both are errors: unsafe outside the audited shims is a policy
/// breach, not debt.
fn unsafe_audit(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    // Comment lines that carry a SAFETY: justification (block comments
    // cover every line they span).
    let mut safety_lines: Vec<u32> = Vec::with_capacity(8);
    for t in ctx.tokens {
        if t.is_comment() && ctx.text(t).contains("SAFETY:") {
            let span = ctx.text(t).matches('\n').count() as u32;
            safety_lines.extend(t.line..=t.line + span);
        }
    }
    let allowlisted = UNSAFE_ALLOWLIST.contains(&ctx.rel_path);
    for t in ctx.code {
        if t.kind != TokKind::Ident || ctx.text(t) != "unsafe" {
            continue;
        }
        if !allowlisted {
            out.push(finding(
                "unsafe-audit",
                Severity::Error,
                ctx,
                t,
                "unsafe outside the audited allowlist (serve's event.rs, \
                 signal.rs, store.rs syscall shims); rewrite safely or \
                 extend the allowlist deliberately"
                    .to_string(),
            ));
        }
        let justified = safety_lines.iter().any(|&l| l <= t.line && l + 5 >= t.line);
        if !justified {
            out.push(finding(
                "unsafe-audit",
                Severity::Error,
                ctx,
                t,
                "unsafe without a SAFETY: comment in the preceding five lines".to_string(),
            ));
        }
    }
}

// --- hot-path-alloc -----------------------------------------------------

/// Files on the simulator's measured hot path, where incremental `Vec`
/// growth shows up directly in the perf-harness numbers.
const HOT_PATHS: &[&str] = &["crates/sim/src/plan.rs", "crates/matrix/src/gemm.rs"];

/// `Vec::new()` anywhere (warning; pre-existing debt lives in the
/// baseline), plus — in the [`HOT_PATHS`] files only — `.push(...)` onto
/// a local bound from `Vec::new()`, i.e. growth with no reserved
/// capacity. Turbofish spellings (`Vec::<T>::new()`) are not matched;
/// the workspace does not use them.
fn hot_path_alloc(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let hot = HOT_PATHS.contains(&ctx.rel_path);
    // Locals bound `let [mut] name = Vec::new()` (or reassigned from
    // one); pushes onto these are growth with no up-front reservation.
    let mut uncapped: Vec<String> = Vec::with_capacity(4);
    let code = ctx.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match ctx.text(t) {
            "Vec" if ctx.code_text(i + 1) == "::" && ctx.code_is_ident(i + 2, "new") => {
                out.push(finding(
                    "hot-path-alloc",
                    Severity::Warning,
                    ctx,
                    t,
                    "Vec::new() grows by reallocating; size it with \
                     Vec::with_capacity, or suppress with a reason the \
                     length is unknowable"
                        .to_string(),
                ));
                if hot && i >= 2 && ctx.code_text(i - 1) == "=" {
                    if let Some(name) = code.get(i - 2).filter(|p| p.kind == TokKind::Ident) {
                        uncapped.push(ctx.text(name).to_string());
                    }
                }
            }
            "push"
                if hot && i >= 2 && ctx.code_text(i - 1) == "." && ctx.code_text(i + 1) == "(" =>
            {
                let recv = &code[i - 2];
                if recv.kind == TokKind::Ident && uncapped.iter().any(|n| n == ctx.text(recv)) {
                    out.push(finding(
                        "hot-path-alloc",
                        Severity::Warning,
                        ctx,
                        t,
                        format!(
                            ".push() onto `{}` (bound from Vec::new) may reallocate \
                             on the hot path; reserve with with_capacity first",
                            ctx.text(recv)
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

// --- blocking-in-event-loop ---------------------------------------------

/// Files that run on the serve event-loop thread, where one blocking
/// call stalls every connection at once.
const EVENT_LOOP_PATHS: &[&str] = &["crates/serve/src/event.rs", "crates/serve/src/conn.rs"];

/// Method calls that park the calling thread: loop-until-done I/O,
/// channel waits, condvar waits, thread parking/joining.
const EVENT_LOOP_BLOCKING_CALLS: &[&str] = &[
    "write_all",
    "write_fmt",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "read_line",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "park",
    "join",
];

/// In the [`EVENT_LOOP_PATHS`] files only, all errors: `thread::sleep`,
/// any [`EVENT_LOOP_BLOCKING_CALLS`] method call (single non-blocking
/// `.read(..)`/`.write(..)` syscalls after a readiness event are the
/// only sanctioned I/O), and `.read(..)`/`.write(..)` while a lock
/// guard is live (the same guard heuristic as `lock-discipline`, but
/// hardened to an error here: I/O under a lock serializes the loop
/// against the worker threads).
fn blocking_in_event_loop(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !EVENT_LOOP_PATHS.contains(&ctx.rel_path) {
        return;
    }
    let code = ctx.code;
    struct Guard {
        name: String,
        depth: i32,
    }
    let mut guards: Vec<Guard> = Vec::with_capacity(4);
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < code.len() {
        let text = ctx.code_text(i);
        match text {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            "let" if code[i].kind == TokKind::Ident => {
                let mut name = None;
                let mut k = i + 1;
                if ctx.code_is_ident(k, "mut") {
                    k += 1;
                }
                if code.get(k).is_some_and(|t| t.kind == TokKind::Ident) {
                    name = Some(ctx.code_text(k).to_string());
                }
                let mut nest = 0i32;
                let mut locks = false;
                let mut j = i + 1;
                while j < code.len() {
                    match ctx.code_text(j) {
                        "{" | "(" | "[" => nest += 1,
                        "}" | ")" | "]" => nest -= 1,
                        ";" if nest <= 0 => break,
                        "lock" if ctx.code_text(j.wrapping_sub(1)) == "." => locks = true,
                        _ => {}
                    }
                    j += 1;
                }
                if locks {
                    if let Some(name) = name {
                        guards.push(Guard { name, depth });
                    }
                }
            }
            "drop" if ctx.code_text(i + 1) == "(" => {
                let dropped = ctx.code_text(i + 2).to_string();
                guards.retain(|g| g.name != dropped);
            }
            "sleep"
                if ctx.code_text(i.wrapping_sub(1)) == "::"
                    && ctx.code_is_ident(i.wrapping_sub(2), "thread") =>
            {
                out.push(finding(
                    "blocking-in-event-loop",
                    Severity::Error,
                    ctx,
                    &code[i],
                    "thread::sleep stalls every connection on the event loop; \
                     use the poll timeout instead"
                        .to_string(),
                ));
            }
            _ => {
                let t = &code[i];
                let is_method_call = t.kind == TokKind::Ident
                    && i >= 1
                    && ctx.code_text(i - 1) == "."
                    && ctx.code_text(i + 1) == "(";
                if is_method_call && EVENT_LOOP_BLOCKING_CALLS.contains(&text) {
                    out.push(finding(
                        "blocking-in-event-loop",
                        Severity::Error,
                        ctx,
                        t,
                        format!(
                            ".{text}() blocks the event-loop thread; do single \
                             non-blocking reads/writes after a readiness event"
                        ),
                    ));
                }
                if is_method_call && (text == "read" || text == "write") {
                    if let Some(g) = guards.last() {
                        out.push(finding(
                            "blocking-in-event-loop",
                            Severity::Error,
                            ctx,
                            t,
                            format!(
                                ".{text}() while `{}` holds a lock guard serializes \
                                 the event loop against the workers; drop the guard \
                                 before touching the socket",
                                g.name
                            ),
                        ));
                    }
                }
            }
        }
        i += 1;
    }
}

// --- spec-coverage ------------------------------------------------------

/// Every registry architecture module under `crates/sim/src/archs/` must
/// ship its bundled `tbstc.v1` document at `crates/core/specs/<name>.json`
/// — `GET /v1/archs`, `tbstc-cli arch show`, and the golden spec-parity
/// suite all read from there. The canonical name is lifted from the
/// module's `fn canonical_name` body (a single string literal). Skipped
/// in fixture mode (no workspace root to consult).
fn spec_coverage(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let Some(root) = ctx.root else {
        return;
    };
    if !ctx.rel_path.starts_with("crates/sim/src/archs/") || ctx.rel_path.ends_with("/mod.rs") {
        return;
    }
    for (i, t) in ctx.code.iter().enumerate() {
        if t.kind != TokKind::Ident
            || ctx.text(t) != "canonical_name"
            || !ctx.code_is_ident(i.wrapping_sub(1), "fn")
        {
            continue;
        }
        // The literal the function returns: first string token after the
        // signature (`fn canonical_name(&self) -> &'static str { "..." }`).
        let Some(lit) = ctx.code[i..]
            .iter()
            .take(16)
            .find(|t| t.kind == TokKind::StrLit)
        else {
            continue;
        };
        let name = ctx.text(lit).trim_matches('"');
        let spec = root.join("crates/core/specs").join(format!("{name}.json"));
        if !spec.is_file() {
            out.push(finding(
                "spec-coverage",
                Severity::Error,
                ctx,
                lit,
                format!(
                    "registry arch `{name}` has no bundled spec document at \
                     crates/core/specs/{name}.json; generate one with \
                     `tbstc-cli arch show {name}`"
                ),
            ));
        }
    }
}

/// Looks for the inner attribute `#![forbid(unsafe_code)]` /
/// `#![deny(unsafe_code)]` anywhere in the file (crate roots put it at
/// the top, but position is not what matters).
fn has_unsafe_code_attr(ctx: &FileCtx<'_>) -> bool {
    let code = ctx.code;
    for i in 0..code.len() {
        if ctx.code_text(i) == "#"
            && ctx.code_text(i + 1) == "!"
            && ctx.code_text(i + 2) == "["
            && (ctx.code_is_ident(i + 3, "forbid") || ctx.code_is_ident(i + 3, "deny"))
            && ctx.code_text(i + 4) == "("
            && ctx.code_is_ident(i + 5, "unsafe_code")
            && ctx.code_text(i + 6) == ")"
            && ctx.code_text(i + 7) == "]"
        {
            return true;
        }
    }
    false
}

// --- store-lock-discipline ----------------------------------------------

/// Filesystem mutations that may only happen inside the locked store
/// accessors (`crates/serve/src/store.rs`).
const STORE_MUTATING_FS_CALLS: &[&str] = &[
    "write",
    "rename",
    "remove_file",
    "remove_dir_all",
    "create_dir_all",
];

/// The shared result store is multi-process: every write to it must go
/// through `ResultStore`'s accessors, which take the flock(2) store lock
/// and use atomic tmp+rename. Any direct `fs::`/`File::`/`OpenOptions`
/// mutation elsewhere in the serve crate can tear `memo.jsonl` or a job
/// status document under a concurrent server, so it is an error.
fn store_lock_discipline(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.rel_path.starts_with("crates/serve/src/") || ctx.rel_path.ends_with("/store.rs") {
        return;
    }
    let code = ctx.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokKind::Ident || i < 2 || ctx.code_text(i - 1) != "::" {
            continue;
        }
        let name = ctx.text(t);
        let owner_is = |what: &str| ctx.code_is_ident(i - 2, what);
        let flagged = (owner_is("fs") && STORE_MUTATING_FS_CALLS.contains(&name))
            || (owner_is("File") && (name == "create" || name == "options"))
            || (owner_is("OpenOptions") && name == "new");
        if flagged {
            let call = format!("{}::{name}", ctx.code_text(i - 2));
            out.push(finding(
                "store-lock-discipline",
                Severity::Error,
                ctx,
                t,
                format!(
                    "{call} outside store.rs bypasses the store lock; route \
                     shared-store writes through a ResultStore accessor"
                ),
            ));
        }
    }
}

// --- lock-order (workspace) ---------------------------------------------

/// Cycle detection over the workspace lock-acquisition graph: an edge
/// A → B means some path acquires B while holding A (directly or via a
/// call whose may-acquire set contains B); any cycle is a deadlock risk
/// once two threads/processes interleave, so it is an error. The
/// finding's message walks the cycle naming every acquisition site.
fn lock_order(ws: &Workspace<'_>, out: &mut Vec<Finding>) {
    let edges = ws.lock_edges();
    for cycle in find_cycles(&edges) {
        let mut order = cycle.locks.join(" -> ");
        order.push_str(" -> ");
        order.push_str(&cycle.locks[0]);
        let mut sites = String::with_capacity(128);
        for e in &cycle.edges {
            let via = if e.site.via_call.is_empty() {
                String::new()
            } else {
                format!(" via call to `{}`", e.site.via_call)
            };
            sites.push_str(&format!(
                "; `{}` taken at {}:{}{} while `{}` held (acquired line {}) in `{}`",
                e.to, e.site.path, e.site.line, via, e.from, e.site.first.line, e.site.qual
            ));
        }
        let first = &cycle.edges[0];
        out.push(Finding {
            rule: "lock-order",
            severity: Severity::Error,
            path: first.site.path.clone(),
            line: first.site.line,
            col: first.site.col,
            message: format!(
                "lock-order cycle {order} risks deadlock{sites}; acquire \
                 these locks in one global order"
            ),
        });
    }
}

// --- panic-reachability (workspace) -------------------------------------

/// The serve request path: every function defined in these files is a
/// reachability root.
const REQUEST_PATH_ROOTS: &[&str] = &["crates/serve/src/event.rs", "crates/serve/src/conn.rs"];

/// Escalates panic sites (what `panic-surface` warns about) to errors
/// when they are transitively reachable from the request path over the
/// call graph; unreachable sites keep their per-file warning. The
/// engine also honors `allow(panic-surface)` for this rule, so one
/// justified suppression covers both.
fn panic_reachability(ws: &Workspace<'_>, out: &mut Vec<Finding>) {
    let roots: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| REQUEST_PATH_ROOTS.contains(&f.path.as_str()))
        .map(|(i, _)| i)
        .collect();
    if roots.is_empty() {
        return;
    }
    let pred = ws.reachable_from(&roots);
    for (i, node) in ws.fns.iter().enumerate() {
        if pred[i].is_none() {
            continue;
        }
        let f = &ws.files[node.file_idx].fns[node.fn_idx];
        if f.panics.is_empty() {
            continue;
        }
        let chain = fmt_chain(&ws.chain_to(&pred, i));
        for p in &f.panics {
            let what = match p.what.as_str() {
                "unwrap" | "expect" => format!(".{}()", p.what),
                "index" => "slice indexing".to_string(),
                m => m.to_string(),
            };
            out.push(Finding {
                rule: "panic-reachability",
                severity: Severity::Error,
                path: node.path.clone(),
                line: p.line,
                col: p.col,
                message: format!(
                    "{what} in `{}` can panic and is reachable from the serve \
                     request path ({chain}); return a typed error or suppress \
                     with a reason",
                    node.qual
                ),
            });
        }
    }
}

/// `a -> b -> … -> z`, elided in the middle past six hops.
fn fmt_chain(quals: &[String]) -> String {
    if quals.len() <= 6 {
        quals.join(" -> ")
    } else {
        format!(
            "{} -> … {} calls … -> {}",
            quals[..3].join(" -> "),
            quals.len() - 5,
            quals[quals.len() - 2..].join(" -> ")
        )
    }
}
