//! The rule engine: file walking, test-code exclusion, inline
//! suppressions, the grandfathered-findings baseline, the workspace
//! graph pass, the incremental cache, and human/JSON rendering.
//!
//! A finding travels through three gates before it fails a build:
//!
//! 1. **test-code exclusion** — tokens inside `#[cfg(test)]` items are
//!    invisible to every rule (tests may `unwrap()` freely),
//! 2. **inline suppression** — `// tbstc-lint: allow(<rule>)` on the
//!    same line, or alone on the line above, silences that rule there
//!    (the comment doubles as the justification). `allow(panic-surface)`
//!    also silences `panic-reachability` at that line: one justified
//!    suppression covers the warning and its escalation,
//! 3. **baseline** — `lint-baseline.txt` at the workspace root lists
//!    grandfathered findings as `rule<TAB>path<TAB>trimmed line text`;
//!    matching findings are reported as baselined, not failing. Entries
//!    are count-aware (two identical lines need two entries); entries
//!    that no longer match anything are listed as stale so the file
//!    shrinks over time.
//!
//! Per-file analysis (lexing, per-file rules, fact extraction) is
//! cached by content hash in [`crate::cache`]; the workspace rules
//! (`lock-order`, `panic-reachability`) rerun every time over the cached
//! facts, which is cheap.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::cache::{fnv1a_128, LintCache};
use crate::graph::Workspace;
use crate::lexer::{lex, TokKind, Token};
use crate::rules;
use crate::syntax::{self, FileFacts};

/// How severe a finding is. Errors always fail the lint; warnings fail
/// only under `--deny-warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails only under `--deny-warnings` (heuristic rules).
    Warning,
    /// Always fails the lint.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One diagnostic: rule, severity, location, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that produced this finding (kebab-case name).
    pub rule: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}]: {}",
            self.path, self.line, self.col, self.severity, self.rule, self.message
        )
    }
}

/// Options for a workspace lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Workspace root (the directory containing `crates/`).
    pub root: PathBuf,
    /// Only run these rules (by name). `None` = all rules.
    pub rules: Option<Vec<String>>,
    /// Baseline file. `None` = `<root>/lint-baseline.txt`; a missing
    /// file is an empty baseline.
    pub baseline: Option<PathBuf>,
    /// Incremental per-file cache file. `None` disables caching; a
    /// missing or stale file is a cold cache.
    pub cache: Option<PathBuf>,
}

/// The outcome of a workspace lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Findings that passed every gate (these fail the build).
    pub findings: Vec<Finding>,
    /// Findings matched by a baseline entry (reported, not failing).
    pub baselined: Vec<Finding>,
    /// Count of findings silenced by inline `allow(...)` comments.
    pub suppressed: usize,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Baseline entries that matched nothing (candidates for deletion).
    pub stale_baseline: Vec<String>,
    /// Files whose per-file analysis came from the incremental cache.
    pub cache_hits: usize,
    /// Files that had to be (re)analyzed.
    pub cache_misses: usize,
}

impl LintReport {
    /// Errors among the failing findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Warnings among the failing findings.
    pub fn warnings(&self) -> usize {
        self.findings.len() - self.errors()
    }

    /// Whether the lint fails under the given warning policy.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }
}

/// Per-file context handed to every rule.
pub struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel_path: &'a str,
    /// The crate directory name (`serve` for `crates/serve/src/...`),
    /// empty when the path is not under `crates/`.
    pub crate_name: &'a str,
    /// The file's source text.
    pub src: &'a str,
    /// Every token, comments included.
    pub tokens: &'a [Token],
    /// Code tokens only (comments stripped) — what rules match against.
    pub code: &'a [Token],
    /// Whether this file is a crate root (`src/lib.rs` / `src/main.rs`).
    pub is_crate_root: bool,
    /// Workspace root, when the lint runs against a real checkout.
    /// `None` in fixture mode; rules that consult the filesystem
    /// (spec-coverage) skip themselves without it.
    pub root: Option<&'a Path>,
}

impl FileCtx<'_> {
    /// The source text of a token.
    pub fn text(&self, t: &Token) -> &str {
        t.text(self.src)
    }

    /// The text of the code token at `i`, or `""` past either end.
    pub fn code_text(&self, i: usize) -> &str {
        self.code.get(i).map_or("", |t| t.text(self.src))
    }

    /// Whether the code token at `i` is an identifier with this text.
    pub fn code_is_ident(&self, i: usize, text: &str) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(self.src) == text)
    }
}

/// Everything the engine learned about one file: its gated per-file
/// findings plus the ingredients the workspace pass and the cache need.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FileAnalysis {
    /// Workspace-relative path, forward slashes.
    pub rel_path: String,
    /// Per-file findings after test exclusion and suppressions (the
    /// baseline, a workspace concept, has not been applied).
    pub findings: Vec<Finding>,
    /// Findings silenced by inline `allow(...)` comments.
    pub suppressed: usize,
    /// Line → rules allowed there (for gating workspace findings).
    pub allows: BTreeMap<u32, Vec<String>>,
    /// `#[cfg(test)]` line ranges, 1-based inclusive.
    pub test_ranges: Vec<(u32, u32)>,
    /// Syntax-layer facts (functions, calls, locks, panic sites).
    pub facts: FileFacts,
}

/// Lints one source text as if it lived at `rel_path`, running all rules.
/// Test-code exclusion and inline suppressions apply; the baseline does
/// not (it is a workspace-level concept). This is the entry point the
/// fixture tests drive. Workspace rules need more than one file; see
/// [`lint_texts`].
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    lint_source_rules(rel_path, src, None, None).0
}

/// [`lint_source`] restricted to a subset of rules; also returns how many
/// findings inline suppressions silenced. `root` enables the
/// filesystem-consulting rules (spec-coverage) against a real checkout.
pub fn lint_source_rules(
    rel_path: &str,
    src: &str,
    only: Option<&[String]>,
    root: Option<&Path>,
) -> (Vec<Finding>, usize) {
    let a = analyze_source(rel_path, src, only, root);
    (a.findings, a.suppressed)
}

/// Runs the per-file rules and the syntax layer over one source text,
/// applying test exclusion and suppressions. This is the unit of work
/// the incremental cache stores.
pub fn analyze_source(
    rel_path: &str,
    src: &str,
    only: Option<&[String]>,
    root: Option<&Path>,
) -> FileAnalysis {
    let tokens = lex(src);
    let code: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).cloned().collect();
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let ctx = FileCtx {
        rel_path,
        crate_name,
        src,
        tokens: &tokens,
        code: &code,
        is_crate_root: rel_path.ends_with("src/lib.rs") || rel_path.ends_with("src/main.rs"),
        root,
    };

    let mut raw = Vec::with_capacity(16);
    for rule in rules::ALL_RULES {
        let enabled = only.is_none_or(|names| names.iter().any(|n| n == rule.name));
        if enabled {
            (rule.check)(&ctx, &mut raw);
        }
    }

    let test_lines = test_ranges(src, &code);
    let allows = suppressions(src, &tokens);
    let mut findings = Vec::with_capacity(raw.len());
    let mut suppressed = 0usize;
    for f in raw {
        if test_lines.iter().any(|&(a, b)| f.line >= a && f.line <= b) {
            continue; // test code is out of scope, silently
        }
        let allowed = allows
            .get(&f.line)
            .is_some_and(|rules| rules.iter().any(|r| r == f.rule));
        if allowed {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    let facts = syntax::extract(rel_path, src, &code, &test_lines);
    FileAnalysis {
        rel_path: rel_path.to_string(),
        findings,
        suppressed,
        allows,
        test_ranges: test_lines,
        facts,
    }
}

/// Runs the workspace rules (`lock-order`, `panic-reachability`) over a
/// set of per-file analyses, gating each finding through the target
/// file's test ranges and suppressions. Returns the surviving findings
/// and the suppressed count.
fn workspace_findings(
    analyses: &mut [FileAnalysis],
    only: Option<&[String]>,
) -> (Vec<Finding>, usize) {
    // The facts are moved out (the cache keeps its own copies); the
    // per-file findings/allows/test_ranges stay behind for gating.
    let facts: Vec<FileFacts> = analyses
        .iter_mut()
        .map(|a| std::mem::take(&mut a.facts))
        .collect();
    let ws = Workspace::build(&facts);
    let mut raw = Vec::with_capacity(8);
    for rule in rules::WORKSPACE_RULES {
        let enabled = only.is_none_or(|names| names.iter().any(|n| n == rule.name));
        if enabled {
            (rule.check)(&ws, &mut raw);
        }
    }
    let by_path: BTreeMap<&str, &FileAnalysis> =
        analyses.iter().map(|a| (a.rel_path.as_str(), a)).collect();
    let mut out = Vec::with_capacity(raw.len());
    let mut suppressed = 0usize;
    for f in raw {
        let Some(a) = by_path.get(f.path.as_str()) else {
            out.push(f);
            continue;
        };
        if a.test_ranges
            .iter()
            .any(|&(lo, hi)| f.line >= lo && f.line <= hi)
        {
            continue;
        }
        let allowed = a.allows.get(&f.line).is_some_and(|rules| {
            rules
                .iter()
                .any(|r| r == f.rule || (f.rule == "panic-reachability" && r == "panic-surface"))
        });
        if allowed {
            suppressed += 1;
        } else {
            out.push(f);
        }
    }
    (out, suppressed)
}

/// Lints a set of in-memory files together, running the per-file rules
/// on each and the workspace rules across all of them. No baseline
/// applies. This is the entry point for multi-file fixture tests.
pub fn lint_texts(files: &[(&str, &str)], only: Option<&[String]>) -> Vec<Finding> {
    let mut analyses: Vec<FileAnalysis> = files
        .iter()
        .map(|(path, src)| analyze_source(path, src, only, None))
        .collect();
    let (ws_findings, _) = workspace_findings(&mut analyses, only);
    let mut out: Vec<Finding> = analyses.into_iter().flat_map(|a| a.findings).collect();
    out.extend(ws_findings);
    out.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    out
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items.
fn test_ranges(src: &str, code: &[Token]) -> Vec<(u32, u32)> {
    let text = |i: usize| code.get(i).map_or("", |t: &Token| t.text(src));
    let mut out = Vec::with_capacity(4);
    let mut i = 0usize;
    while i < code.len() {
        if !(text(i) == "#" && text(i + 1) == "[" && is_cfg_test_attr(src, code, i)) {
            i += 1;
            continue;
        }
        // Skip this and any further attributes to reach the item itself.
        let start_line = code[i].line;
        let mut j = i;
        while text(j) == "#" && text(j + 1) == "[" {
            j = skip_attr(src, code, j);
        }
        let end = item_end(src, code, j);
        let end_line = code.get(end).map_or(start_line, |t| t.line);
        out.push((start_line, end_line));
        i = end + 1;
    }
    out
}

/// Does the attribute group starting at `i` (`#` `[` …) mention both
/// `cfg` and `test`? Catches `#[cfg(test)]` and `#[cfg(all(test, …))]`.
fn is_cfg_test_attr(src: &str, code: &[Token], i: usize) -> bool {
    let end = skip_attr(src, code, i);
    let mut saw_cfg = false;
    let mut saw_test = false;
    for t in &code[i..end.min(code.len())] {
        if t.kind == TokKind::Ident {
            match t.text(src) {
                "cfg" => saw_cfg = true,
                "test" => saw_test = true,
                _ => {}
            }
        }
    }
    saw_cfg && saw_test
}

/// Index one past the closing `]` of the attribute starting at `i`.
fn skip_attr(src: &str, code: &[Token], i: usize) -> usize {
    let text = |i: usize| code.get(i).map_or("", |t: &Token| t.text(src));
    let mut j = i;
    while j < code.len() && text(j) != "[" {
        j += 1;
    }
    let mut depth = 0i32;
    while j < code.len() {
        match text(j) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    code.len()
}

/// Index of the last token of the item starting at `j` (after its
/// attributes): the matching `}` of its first brace block, or the
/// terminating `;` for bodiless items.
fn item_end(src: &str, code: &[Token], j: usize) -> usize {
    let text = |i: usize| code.get(i).map_or("", |t: &Token| t.text(src));
    let mut k = j;
    while k < code.len() {
        match text(k) {
            "{" => {
                let mut depth = 0i32;
                while k < code.len() {
                    match text(k) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return k;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                return code.len().saturating_sub(1);
            }
            ";" => return k,
            _ => k += 1,
        }
    }
    code.len().saturating_sub(1)
}

/// Parses `// tbstc-lint: allow(rule, rule)` comments into a map from
/// affected line to allowed rules. A trailing comment covers its own
/// line; a comment alone on a line covers the next code line too (and
/// consecutive standalone comments all bind to that same code line).
fn suppressions(src: &str, tokens: &[Token]) -> BTreeMap<u32, Vec<String>> {
    let mut out: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for (idx, t) in tokens.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        let Some(rules) = parse_allow(t.text(src)) else {
            continue;
        };
        let standalone = !tokens
            .iter()
            .take(idx)
            .any(|p| p.line == t.line && !p.is_comment());
        out.entry(t.line).or_default().extend(rules.iter().cloned());
        if standalone {
            if let Some(next) = tokens.iter().skip(idx + 1).find(|n| !n.is_comment()) {
                out.entry(next.line).or_default().extend(rules);
            }
        }
    }
    out
}

/// Extracts the rule list from a `tbstc-lint: allow(a, b) — reason`
/// comment, or `None` when the comment is not a suppression.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let rest = comment.split("tbstc-lint:").nth(1)?;
    let rest = rest.trim_start().strip_prefix("allow")?.trim_start();
    let inner = rest.strip_prefix('(')?;
    let end = inner.find(')')?;
    let rules: Vec<String> = inner
        .get(..end)?
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    (!rules.is_empty()).then_some(rules)
}

// --- workspace driver ---------------------------------------------------

/// Collects every `.rs` file under `dir`, recursively, sorted for
/// deterministic reports.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Default baseline file name at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// The cache fingerprint for a run: engine shape plus the rule filter
/// plus anything a cached per-file result consulted outside the file
/// itself (today: the spec documents spec-coverage checks for).
fn cache_fingerprint(opts: &LintOptions) -> String {
    let mut fp = String::with_capacity(256);
    fp.push_str("rules=");
    match &opts.rules {
        None => fp.push('*'),
        Some(rs) => {
            let mut rs = rs.clone();
            rs.sort();
            fp.push_str(&rs.join(","));
        }
    }
    fp.push_str(";specs=");
    if let Ok(entries) = fs::read_dir(opts.root.join("crates/core/specs")) {
        let mut names: Vec<String> = entries
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        fp.push_str(&names.join(","));
    }
    fp
}

/// Lints every `crates/*/src/**/*.rs` under `opts.root`: per-file rules
/// (through the incremental cache when `opts.cache` is set), then the
/// workspace rules over all files' facts, then the baseline.
///
/// # Errors
///
/// Returns a message when the root has no `crates/` directory or a
/// source file cannot be read.
pub fn lint_workspace(opts: &LintOptions) -> Result<LintReport, String> {
    let crates_dir = opts.root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "no crates/ directory under {}",
            opts.root.display()
        ));
    }
    let mut files = Vec::with_capacity(128);
    rust_files(&crates_dir, &mut files);
    // Only library/binary sources: crates/<name>/src/**. Tests, benches,
    // and examples trade rigor for brevity on purpose.
    files.retain(|p| {
        p.strip_prefix(&opts.root)
            .ok()
            .and_then(|r| r.components().nth(2))
            .is_some_and(|c| c.as_os_str() == "src")
    });

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join(BASELINE_FILE));
    let mut baseline = load_baseline(&baseline_path);
    let fingerprint = cache_fingerprint(opts);
    let mut cache = opts
        .cache
        .as_deref()
        .map(|p| LintCache::load(p, &fingerprint));

    let mut report = LintReport::default();
    let mut analyses: Vec<FileAnalysis> = Vec::with_capacity(files.len());
    let mut sources: BTreeMap<String, String> = BTreeMap::new();

    // Phase 1: read and hash everything, so the combined hash — and
    // with it, whether the cross-file pass will replay from the cache —
    // is known before any per-file work.
    let mut metas: Vec<(String, String, String)> = Vec::with_capacity(files.len());
    let mut combined_src = String::with_capacity(files.len() * 64);
    for path in &files {
        let rel = path
            .strip_prefix(&opts.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let hash = fnv1a_128(src.as_bytes());
        combined_src.push_str(&rel);
        combined_src.push('\t');
        combined_src.push_str(&hash);
        combined_src.push('\n');
        metas.push((rel, src, hash));
    }
    let combined = fnv1a_128(combined_src.as_bytes());
    let ws_cached = cache
        .as_ref()
        .and_then(|c| c.get_workspace(&combined))
        .is_some();

    // Phase 2: per-file analyses, through the cache. When the workspace
    // pass is going to replay too, the facts in each hit are dead
    // weight — only the pre-gated findings travel on.
    for (rel, src, hash) in metas {
        let analysis = match cache.as_ref().and_then(|c| c.get(&rel, &hash)) {
            Some(hit) => {
                report.cache_hits += 1;
                if ws_cached {
                    FileAnalysis {
                        rel_path: hit.rel_path.clone(),
                        findings: hit.findings.clone(),
                        suppressed: hit.suppressed,
                        ..FileAnalysis::default()
                    }
                } else {
                    hit.clone()
                }
            }
            None => {
                report.cache_misses += 1;
                let a = analyze_source(&rel, &src, opts.rules.as_deref(), Some(&opts.root));
                if let Some(c) = cache.as_mut() {
                    c.put(rel.clone(), hash, a.clone());
                }
                a
            }
        };
        report.suppressed += analysis.suppressed;
        report.files_scanned += 1;
        sources.insert(rel, src);
        analyses.push(analysis);
    }

    // The cross-file pass replays from the cache when no file changed
    // (the combined hash covers the whole scan set, so adding, editing,
    // or deleting any file forces a rebuild of the graphs).
    let (ws_findings, ws_suppressed) = match cache.as_ref().and_then(|c| c.get_workspace(&combined))
    {
        Some((findings, suppressed)) => (findings.to_vec(), suppressed),
        None => {
            let (findings, suppressed) = workspace_findings(&mut analyses, opts.rules.as_deref());
            if let Some(c) = cache.as_mut() {
                c.put_workspace(combined, findings.clone(), suppressed);
            }
            (findings, suppressed)
        }
    };
    report.suppressed += ws_suppressed;

    let mut all: Vec<Finding> = analyses.into_iter().flat_map(|a| a.findings).collect();
    all.extend(ws_findings);
    all.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    for f in all {
        let line_text = sources
            .get(&f.path)
            .and_then(|src| src.lines().nth(f.line as usize - 1))
            .map_or(String::new(), |l| l.trim().to_string());
        let key = (f.rule.to_string(), f.path.clone(), line_text);
        match baseline.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                report.baselined.push(f);
            }
            _ => report.findings.push(f),
        }
    }
    for ((rule, path, text), n) in baseline {
        for _ in 0..n {
            report
                .stale_baseline
                .push(format!("{rule}\t{path}\t{text}"));
        }
    }
    report.stale_baseline.sort();
    if let (Some(mut c), Some(p)) = (cache, opts.cache.as_deref()) {
        c.prune_to(&sources.keys().cloned().collect());
        // A fully-warm run leaves the store alone; cache write failure
        // never fails the lint — the next run is just cold again.
        if c.dirty() {
            let _ = c.save(p);
        }
    }
    Ok(report)
}

type BaselineKey = (String, String, String);

fn load_baseline(path: &Path) -> BTreeMap<BaselineKey, usize> {
    let mut out: BTreeMap<BaselineKey, usize> = BTreeMap::new();
    let Ok(text) = fs::read_to_string(path) else {
        return out;
    };
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (Some(rule), Some(p), Some(snippet)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        *out.entry((rule.to_string(), p.to_string(), snippet.to_string()))
            .or_default() += 1;
    }
    out
}

/// Serializes the failing + baselined findings of `report` into baseline
/// format (what `--update-baseline` writes). `sources` maps a
/// workspace-relative path to its text so each finding's line can be
/// recorded.
pub fn render_baseline(report: &LintReport, sources: &dyn Fn(&str) -> Option<String>) -> String {
    let mut lines: Vec<String> = Vec::with_capacity(report.findings.len() + report.baselined.len());
    for f in report.findings.iter().chain(&report.baselined) {
        let text = sources(&f.path)
            .and_then(|src| {
                src.lines()
                    .nth(f.line as usize - 1)
                    .map(|l| l.trim().to_string())
            })
            .unwrap_or_default();
        lines.push(format!("{}\t{}\t{}", f.rule, f.path, text));
    }
    lines.sort();
    // Entries are count-aware: two findings with identical trimmed lines
    // need — and get — two baseline entries, so no dedup here.
    let mut out = String::from(
        "# tbstc-lint baseline: grandfathered findings, one per line as\n\
         # rule<TAB>path<TAB>trimmed source line (count-aware: duplicates\n\
         # are distinct entries). Regenerate with\n\
         # `tbstc-cli lint --update-baseline`; delete lines as code is fixed.\n",
    );
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

/// Renders the report as compiler-style text plus a summary line.
pub fn render_human(report: &LintReport, deny_warnings: bool) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    for s in &report.stale_baseline {
        out.push_str(&format!(
            "stale baseline entry (fixed? delete it): {}\n",
            s.replace('\t', " | ")
        ));
    }
    out.push_str(&format!(
        "tbstc-lint: {} files scanned; {} error(s), {} warning(s){}; {} suppressed, {} baselined, {} stale baseline entr{}",
        report.files_scanned,
        report.errors(),
        report.warnings(),
        if deny_warnings { " (denied)" } else { "" },
        report.suppressed,
        report.baselined.len(),
        report.stale_baseline.len(),
        if report.stale_baseline.len() == 1 { "y" } else { "ies" },
    ));
    if report.cache_hits + report.cache_misses > 0 {
        out.push_str(&format!(
            "; cache {} hit(s) / {} miss(es)",
            report.cache_hits, report.cache_misses
        ));
    }
    out.push('\n');
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as one JSON document (`tbstc-lint.v1`).
pub fn render_json(report: &LintReport) -> String {
    let finding = |f: &Finding| {
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            f.rule,
            f.severity,
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message)
        )
    };
    let findings: Vec<String> = report.findings.iter().map(finding).collect();
    let baselined: Vec<String> = report.baselined.iter().map(finding).collect();
    let stale: Vec<String> = report
        .stale_baseline
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!(
        "{{\"schema\":\"tbstc-lint.v1\",\"files_scanned\":{},\"errors\":{},\"warnings\":{},\"suppressed\":{},\"findings\":[{}],\"baselined\":[{}],\"stale_baseline\":[{}]}}\n",
        report.files_scanned,
        report.errors(),
        report.warnings(),
        report.suppressed,
        findings.join(","),
        baselined.join(","),
        stale.join(","),
    )
}
