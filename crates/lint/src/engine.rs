//! The rule engine: file walking, test-code exclusion, inline
//! suppressions, the grandfathered-findings baseline, and human/JSON
//! rendering.
//!
//! A finding travels through three gates before it fails a build:
//!
//! 1. **test-code exclusion** — tokens inside `#[cfg(test)]` items are
//!    invisible to every rule (tests may `unwrap()` freely),
//! 2. **inline suppression** — `// tbstc-lint: allow(<rule>)` on the
//!    same line, or alone on the line above, silences that rule there
//!    (the comment doubles as the justification),
//! 3. **baseline** — `lint-baseline.txt` at the workspace root lists
//!    grandfathered findings as `rule<TAB>path<TAB>trimmed line text`;
//!    matching findings are reported as baselined, not failing. Entries
//!    that no longer match anything are listed as stale so the file
//!    shrinks over time.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokKind, Token};
use crate::rules;

/// How severe a finding is. Errors always fail the lint; warnings fail
/// only under `--deny-warnings`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails only under `--deny-warnings` (heuristic rules).
    Warning,
    /// Always fails the lint.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One diagnostic: rule, severity, location, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that produced this finding (kebab-case name).
    pub rule: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// What is wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}]: {}",
            self.path, self.line, self.col, self.severity, self.rule, self.message
        )
    }
}

/// Options for a workspace lint run.
#[derive(Debug, Clone, Default)]
pub struct LintOptions {
    /// Workspace root (the directory containing `crates/`).
    pub root: PathBuf,
    /// Only run these rules (by name). `None` = all rules.
    pub rules: Option<Vec<String>>,
    /// Baseline file. `None` = `<root>/lint-baseline.txt`; a missing
    /// file is an empty baseline.
    pub baseline: Option<PathBuf>,
}

/// The outcome of a workspace lint run.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Findings that passed every gate (these fail the build).
    pub findings: Vec<Finding>,
    /// Findings matched by a baseline entry (reported, not failing).
    pub baselined: Vec<Finding>,
    /// Count of findings silenced by inline `allow(...)` comments.
    pub suppressed: usize,
    /// `.rs` files scanned.
    pub files_scanned: usize,
    /// Baseline entries that matched nothing (candidates for deletion).
    pub stale_baseline: Vec<String>,
}

impl LintReport {
    /// Errors among the failing findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Warnings among the failing findings.
    pub fn warnings(&self) -> usize {
        self.findings.len() - self.errors()
    }

    /// Whether the lint fails under the given warning policy.
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }
}

/// Per-file context handed to every rule.
pub struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub rel_path: &'a str,
    /// The crate directory name (`serve` for `crates/serve/src/...`),
    /// empty when the path is not under `crates/`.
    pub crate_name: &'a str,
    /// The file's source text.
    pub src: &'a str,
    /// Every token, comments included.
    pub tokens: &'a [Token],
    /// Code tokens only (comments stripped) — what rules match against.
    pub code: &'a [Token],
    /// Whether this file is a crate root (`src/lib.rs` / `src/main.rs`).
    pub is_crate_root: bool,
    /// Workspace root, when the lint runs against a real checkout.
    /// `None` in fixture mode; rules that consult the filesystem
    /// (spec-coverage) skip themselves without it.
    pub root: Option<&'a Path>,
}

impl FileCtx<'_> {
    /// The source text of a token.
    pub fn text(&self, t: &Token) -> &str {
        t.text(self.src)
    }

    /// The text of the code token at `i`, or `""` past either end.
    pub fn code_text(&self, i: usize) -> &str {
        self.code.get(i).map_or("", |t| t.text(self.src))
    }

    /// Whether the code token at `i` is an identifier with this text.
    pub fn code_is_ident(&self, i: usize, text: &str) -> bool {
        self.code
            .get(i)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(self.src) == text)
    }
}

/// Lints one source text as if it lived at `rel_path`, running all rules.
/// Test-code exclusion and inline suppressions apply; the baseline does
/// not (it is a workspace-level concept). This is the entry point the
/// fixture tests drive.
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    lint_source_rules(rel_path, src, None, None).0
}

/// [`lint_source`] restricted to a subset of rules; also returns how many
/// findings inline suppressions silenced. `root` enables the
/// filesystem-consulting rules (spec-coverage) against a real checkout.
pub fn lint_source_rules(
    rel_path: &str,
    src: &str,
    only: Option<&[String]>,
    root: Option<&Path>,
) -> (Vec<Finding>, usize) {
    let tokens = lex(src);
    let code: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).cloned().collect();
    let crate_name = rel_path
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    let ctx = FileCtx {
        rel_path,
        crate_name,
        src,
        tokens: &tokens,
        code: &code,
        is_crate_root: rel_path.ends_with("src/lib.rs") || rel_path.ends_with("src/main.rs"),
        root,
    };

    let mut raw = Vec::new();
    for rule in rules::ALL_RULES {
        let enabled = only.is_none_or(|names| names.iter().any(|n| n == rule.name));
        if enabled {
            (rule.check)(&ctx, &mut raw);
        }
    }

    let test_lines = test_ranges(src, &code);
    let allows = suppressions(src, &tokens);
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        if test_lines.iter().any(|&(a, b)| f.line >= a && f.line <= b) {
            continue; // test code is out of scope, silently
        }
        let allowed = allows
            .get(&f.line)
            .is_some_and(|rules| rules.iter().any(|r| r == f.rule));
        if allowed {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    (findings, suppressed)
}

/// Line ranges (1-based, inclusive) covered by `#[cfg(test)]` items.
fn test_ranges(src: &str, code: &[Token]) -> Vec<(u32, u32)> {
    let text = |i: usize| code.get(i).map_or("", |t: &Token| t.text(src));
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(text(i) == "#" && text(i + 1) == "[" && is_cfg_test_attr(src, code, i)) {
            i += 1;
            continue;
        }
        // Skip this and any further attributes to reach the item itself.
        let start_line = code[i].line;
        let mut j = i;
        while text(j) == "#" && text(j + 1) == "[" {
            j = skip_attr(src, code, j);
        }
        let end = item_end(src, code, j);
        let end_line = code.get(end).map_or(start_line, |t| t.line);
        out.push((start_line, end_line));
        i = end + 1;
    }
    out
}

/// Does the attribute group starting at `i` (`#` `[` …) mention both
/// `cfg` and `test`? Catches `#[cfg(test)]` and `#[cfg(all(test, …))]`.
fn is_cfg_test_attr(src: &str, code: &[Token], i: usize) -> bool {
    let end = skip_attr(src, code, i);
    let mut saw_cfg = false;
    let mut saw_test = false;
    for t in &code[i..end.min(code.len())] {
        if t.kind == TokKind::Ident {
            match t.text(src) {
                "cfg" => saw_cfg = true,
                "test" => saw_test = true,
                _ => {}
            }
        }
    }
    saw_cfg && saw_test
}

/// Index one past the closing `]` of the attribute starting at `i`.
fn skip_attr(src: &str, code: &[Token], i: usize) -> usize {
    let text = |i: usize| code.get(i).map_or("", |t: &Token| t.text(src));
    let mut j = i;
    while j < code.len() && text(j) != "[" {
        j += 1;
    }
    let mut depth = 0i32;
    while j < code.len() {
        match text(j) {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    code.len()
}

/// Index of the last token of the item starting at `j` (after its
/// attributes): the matching `}` of its first brace block, or the
/// terminating `;` for bodiless items.
fn item_end(src: &str, code: &[Token], j: usize) -> usize {
    let text = |i: usize| code.get(i).map_or("", |t: &Token| t.text(src));
    let mut k = j;
    while k < code.len() {
        match text(k) {
            "{" => {
                let mut depth = 0i32;
                while k < code.len() {
                    match text(k) {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return k;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                return code.len().saturating_sub(1);
            }
            ";" => return k,
            _ => k += 1,
        }
    }
    code.len().saturating_sub(1)
}

/// Parses `// tbstc-lint: allow(rule, rule)` comments into a map from
/// affected line to allowed rules. A trailing comment covers its own
/// line; a comment alone on a line covers the next code line too (and
/// consecutive standalone comments all bind to that same code line).
fn suppressions(src: &str, tokens: &[Token]) -> BTreeMap<u32, Vec<String>> {
    let mut out: BTreeMap<u32, Vec<String>> = BTreeMap::new();
    for (idx, t) in tokens.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        let Some(rules) = parse_allow(t.text(src)) else {
            continue;
        };
        let standalone = !tokens
            .iter()
            .take(idx)
            .any(|p| p.line == t.line && !p.is_comment());
        out.entry(t.line).or_default().extend(rules.iter().cloned());
        if standalone {
            if let Some(next) = tokens.iter().skip(idx + 1).find(|n| !n.is_comment()) {
                out.entry(next.line).or_default().extend(rules);
            }
        }
    }
    out
}

/// Extracts the rule list from a `tbstc-lint: allow(a, b) — reason`
/// comment, or `None` when the comment is not a suppression.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let rest = comment.split("tbstc-lint:").nth(1)?;
    let rest = rest.trim_start().strip_prefix("allow")?.trim_start();
    let inner = rest.strip_prefix('(')?;
    let end = inner.find(')')?;
    let rules: Vec<String> = inner
        .get(..end)?
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    (!rules.is_empty()).then_some(rules)
}

// --- workspace driver ---------------------------------------------------

/// Collects every `.rs` file under `dir`, recursively, sorted for
/// deterministic reports.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Default baseline file name at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// Lints every `crates/*/src/**/*.rs` under `opts.root`, applying the
/// baseline.
///
/// # Errors
///
/// Returns a message when the root has no `crates/` directory or a
/// source file cannot be read.
pub fn lint_workspace(opts: &LintOptions) -> Result<LintReport, String> {
    let crates_dir = opts.root.join("crates");
    if !crates_dir.is_dir() {
        return Err(format!(
            "no crates/ directory under {}",
            opts.root.display()
        ));
    }
    let mut files = Vec::new();
    rust_files(&crates_dir, &mut files);
    // Only library/binary sources: crates/<name>/src/**. Tests, benches,
    // and examples trade rigor for brevity on purpose.
    files.retain(|p| {
        p.strip_prefix(&opts.root)
            .ok()
            .and_then(|r| r.components().nth(2))
            .is_some_and(|c| c.as_os_str() == "src")
    });

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join(BASELINE_FILE));
    let mut baseline = load_baseline(&baseline_path);

    let mut report = LintReport::default();
    for path in &files {
        let rel = path
            .strip_prefix(&opts.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let (findings, suppressed) =
            lint_source_rules(&rel, &src, opts.rules.as_deref(), Some(&opts.root));
        report.suppressed += suppressed;
        report.files_scanned += 1;
        let lines: Vec<&str> = src.lines().collect();
        for f in findings {
            let line_text = lines
                .get(f.line as usize - 1)
                .map_or("", |l| l.trim())
                .to_string();
            let key = (f.rule.to_string(), f.path.clone(), line_text);
            match baseline.get_mut(&key) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    report.baselined.push(f);
                }
                _ => report.findings.push(f),
            }
        }
    }
    for ((rule, path, text), n) in baseline {
        for _ in 0..n {
            report
                .stale_baseline
                .push(format!("{rule}\t{path}\t{text}"));
        }
    }
    report.stale_baseline.sort();
    Ok(report)
}

type BaselineKey = (String, String, String);

fn load_baseline(path: &Path) -> BTreeMap<BaselineKey, usize> {
    let mut out: BTreeMap<BaselineKey, usize> = BTreeMap::new();
    let Ok(text) = fs::read_to_string(path) else {
        return out;
    };
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        let (Some(rule), Some(p), Some(snippet)) = (parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        *out.entry((rule.to_string(), p.to_string(), snippet.to_string()))
            .or_default() += 1;
    }
    out
}

/// Serializes the failing + baselined findings of `report` into baseline
/// format (what `--update-baseline` writes). `sources` maps a
/// workspace-relative path to its text so each finding's line can be
/// recorded.
pub fn render_baseline(report: &LintReport, sources: &dyn Fn(&str) -> Option<String>) -> String {
    let mut lines: Vec<String> = Vec::new();
    for f in report.findings.iter().chain(&report.baselined) {
        let text = sources(&f.path)
            .and_then(|src| {
                src.lines()
                    .nth(f.line as usize - 1)
                    .map(|l| l.trim().to_string())
            })
            .unwrap_or_default();
        lines.push(format!("{}\t{}\t{}", f.rule, f.path, text));
    }
    lines.sort();
    lines.dedup();
    let mut out = String::from(
        "# tbstc-lint baseline: grandfathered findings, one per line as\n\
         # rule<TAB>path<TAB>trimmed source line. Regenerate with\n\
         # `tbstc-cli lint --update-baseline`; delete lines as code is fixed.\n",
    );
    for l in lines {
        out.push_str(&l);
        out.push('\n');
    }
    out
}

/// Renders the report as compiler-style text plus a summary line.
pub fn render_human(report: &LintReport, deny_warnings: bool) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    for s in &report.stale_baseline {
        out.push_str(&format!(
            "stale baseline entry (fixed? delete it): {}\n",
            s.replace('\t', " | ")
        ));
    }
    out.push_str(&format!(
        "tbstc-lint: {} files scanned; {} error(s), {} warning(s){}; {} suppressed, {} baselined, {} stale baseline entr{}\n",
        report.files_scanned,
        report.errors(),
        report.warnings(),
        if deny_warnings { " (denied)" } else { "" },
        report.suppressed,
        report.baselined.len(),
        report.stale_baseline.len(),
        if report.stale_baseline.len() == 1 { "y" } else { "ies" },
    ));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the report as one JSON document (`tbstc-lint.v1`).
pub fn render_json(report: &LintReport) -> String {
    let finding = |f: &Finding| {
        format!(
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            f.rule,
            f.severity,
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message)
        )
    };
    let findings: Vec<String> = report.findings.iter().map(finding).collect();
    let baselined: Vec<String> = report.baselined.iter().map(finding).collect();
    let stale: Vec<String> = report
        .stale_baseline
        .iter()
        .map(|s| format!("\"{}\"", json_escape(s)))
        .collect();
    format!(
        "{{\"schema\":\"tbstc-lint.v1\",\"files_scanned\":{},\"errors\":{},\"warnings\":{},\"suppressed\":{},\"findings\":[{}],\"baselined\":[{}],\"stale_baseline\":[{}]}}\n",
        report.files_scanned,
        report.errors(),
        report.warnings(),
        report.suppressed,
        findings.join(","),
        baselined.join(","),
        stale.join(","),
    )
}
