//! SARIF 2.1.0 output (`lint --sarif`), for CI annotation surfaces.
//!
//! One run, one driver (`tbstc-lint`), the full twelve-rule table as
//! `tool.driver.rules`, and one `result` per finding. Failing findings
//! carry no `suppressions`; baselined findings carry one suppression of
//! `kind: "external"` (the baseline file is exactly that), so viewers
//! show them greyed out rather than hiding the debt. Hand-rolled JSON,
//! like the rest of the crate — the shape is pinned by a golden fixture
//! test.

use crate::engine::{json_escape, Finding, LintReport, Severity};
use crate::rules::{ALL_RULES, WORKSPACE_RULES};

/// The schema URI embedded in the document.
pub const SARIF_SCHEMA: &str =
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json";

/// Renders a lint report as one SARIF 2.1.0 document.
pub fn render_sarif(report: &LintReport) -> String {
    let mut rule_ids: Vec<(&str, &str)> = Vec::with_capacity(16);
    for r in ALL_RULES {
        rule_ids.push((r.name, r.desc));
    }
    for r in WORKSPACE_RULES {
        rule_ids.push((r.name, r.desc));
    }

    let rules_json: Vec<String> = rule_ids
        .iter()
        .map(|(name, desc)| {
            format!(
                "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}}}}",
                json_escape(name),
                json_escape(&collapse_ws(desc))
            )
        })
        .collect();

    let rule_index = |rule: &str| rule_ids.iter().position(|(n, _)| *n == rule).unwrap_or(0);
    let result = |f: &Finding, suppressed_by_baseline: bool| {
        let level = match f.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let suppressions = if suppressed_by_baseline {
            ",\"suppressions\":[{\"kind\":\"external\"}]"
        } else {
            ""
        };
        format!(
            "{{\"ruleId\":\"{}\",\"ruleIndex\":{},\"level\":\"{level}\",\
             \"message\":{{\"text\":\"{}\"}},\"locations\":[{{\"physicalLocation\":\
             {{\"artifactLocation\":{{\"uri\":\"{}\",\"uriBaseId\":\"SRCROOT\"}},\
             \"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]{suppressions}}}",
            json_escape(f.rule),
            rule_index(f.rule),
            json_escape(&f.message),
            json_escape(&f.path),
            f.line,
            f.col,
        )
    };

    let mut results: Vec<String> =
        Vec::with_capacity(report.findings.len() + report.baselined.len());
    for f in &report.findings {
        results.push(result(f, false));
    }
    for f in &report.baselined {
        results.push(result(f, true));
    }

    format!(
        "{{\"$schema\":\"{SARIF_SCHEMA}\",\"version\":\"2.1.0\",\"runs\":[{{\
         \"tool\":{{\"driver\":{{\"name\":\"tbstc-lint\",\
         \"informationUri\":\"https://example.invalid/tbstc\",\
         \"version\":\"{}\",\"rules\":[{}]}}}},\
         \"columnKind\":\"utf16CodeUnits\",\
         \"originalUriBaseIds\":{{\"SRCROOT\":{{\"uri\":\"file:///\"}}}},\
         \"results\":[{}]}}]}}\n",
        env!("CARGO_PKG_VERSION"),
        rules_json.join(","),
        results.join(","),
    )
}

/// The rule descriptions use continuation-indented string literals;
/// collapse runs of whitespace so SARIF text stays one clean line.
fn collapse_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = false;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out
}
