//! The incremental per-file result cache.
//!
//! A warm `lint` run should cost close to nothing: per-file analysis
//! (lexing, per-file rules, fact extraction) is pure in the file's
//! bytes, so its result is cached keyed by an FNV-1a-128 content hash.
//! The workspace pass (`lock-order`, `panic-reachability`) is cross-
//! file, so its (gated) findings are cached too, keyed by one combined
//! hash over every (path, content-hash) pair — touch any file and the
//! graphs rebuild from the cached facts; touch nothing and the whole
//! run is hash-and-replay. Only the baseline match always reruns. A
//! fully-warm run leaves the store untouched on disk ([`LintCache::dirty`]).
//!
//! The store is one text file (default `target/tbstc-lint.cache`), one
//! record per line, tab-separated with `\\`/`\t`/`\n` escapes. Line 1
//! carries a version and a run **fingerprint** (rule filter + the spec
//! inventory spec-coverage consults); any mismatch, truncation, or
//! unparseable record invalidates exactly the entries it touches — a
//! corrupt cache is a cold cache, never a wrong one.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::Path;

use crate::engine::{FileAnalysis, Finding, Severity};
use crate::rules::static_rule_name;
use crate::syntax::{CallSite, FnFacts, HeldCall, LockSite, OrderedPair, PanicSite};

/// Bump when the record format or the meaning of a cached analysis
/// changes (new per-file rule, changed fact extraction, …).
pub const CACHE_VERSION: u32 = 1;

/// FNV-1a, 128-bit, as 32 lowercase hex digits. Not cryptographic —
/// it keys a local cache, where accidental collision resistance at
/// 128 bits is plenty.
pub fn fnv1a_128(bytes: &[u8]) -> String {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    format!("{h:032x}")
}

/// One cached file: the content hash it was computed from plus the
/// full analysis.
#[derive(Debug, Clone)]
struct Entry {
    hash: String,
    analysis: FileAnalysis,
}

/// The cached cross-file pass: the already-gated workspace findings,
/// valid for one combined hash over every (path, content-hash) pair.
#[derive(Debug, Clone)]
struct WsEntry {
    combined: String,
    suppressed: usize,
    findings: Vec<Finding>,
}

/// The cache store: path → entry, plus the fingerprint it is valid for.
#[derive(Debug, Default)]
pub struct LintCache {
    fingerprint: String,
    entries: BTreeMap<String, Entry>,
    workspace: Option<WsEntry>,
    dirty: bool,
}

impl LintCache {
    /// Loads the cache at `path`, returning an empty cache when the
    /// file is missing, the version or `fingerprint` mismatches, or the
    /// header is unreadable. Individually corrupt records drop only
    /// their own file's entry.
    pub fn load(path: &Path, fingerprint: &str) -> LintCache {
        let mut cache = LintCache {
            fingerprint: fingerprint.to_string(),
            ..LintCache::default()
        };
        let Ok(text) = fs::read_to_string(path) else {
            return cache;
        };
        let mut lines = text.lines();
        let Some(header) = lines.next() else {
            return cache;
        };
        let mut h = header.split('\t');
        if h.next() != Some("tbstc-lint-cache")
            || h.next() != Some(&CACHE_VERSION.to_string())
            || h.next().map(unescape) != Some(fingerprint.to_string())
        {
            return cache;
        }
        let mut cur: Option<(String, Entry)> = None;
        let mut poisoned = false;
        for line in lines {
            let mut fields = line.split('\t');
            let tag = fields.next().unwrap_or("");
            if tag == "F" {
                if let Some((path, entry)) = cur.take() {
                    if !poisoned {
                        cache.entries.insert(path, entry);
                    }
                }
                poisoned = false;
                match (fields.next(), fields.next()) {
                    (Some(p), Some(hash)) => {
                        cur = Some((
                            unescape(p),
                            Entry {
                                hash: hash.to_string(),
                                analysis: FileAnalysis {
                                    rel_path: unescape(p),
                                    ..FileAnalysis::default()
                                },
                            },
                        ));
                    }
                    _ => poisoned = true,
                }
                continue;
            }
            if tag == "W" {
                // The workspace entry closes any open file entry; a
                // corrupt W/R record drops only the workspace result.
                if let Some((path, entry)) = cur.take() {
                    if !poisoned {
                        cache.entries.insert(path, entry);
                    }
                }
                poisoned = false;
                cache.workspace = match (fields.next(), fields.next().and_then(|n| n.parse().ok()))
                {
                    (Some(combined), Some(suppressed)) => Some(WsEntry {
                        combined: combined.to_string(),
                        suppressed,
                        findings: Vec::with_capacity(8),
                    }),
                    _ => None,
                };
                continue;
            }
            if tag == "R" {
                let parsed = parse_ws_finding(&mut fields);
                match (cache.workspace.as_mut(), parsed) {
                    (Some(ws), Some(f)) => ws.findings.push(f),
                    _ => cache.workspace = None,
                }
                continue;
            }
            let Some((_, entry)) = cur.as_mut() else {
                continue;
            };
            if poisoned {
                continue;
            }
            if parse_record(tag, &mut fields, &mut entry.analysis).is_none() {
                poisoned = true;
            }
        }
        if let Some((path, entry)) = cur.take() {
            if !poisoned {
                cache.entries.insert(path, entry);
            }
        }
        cache
    }

    /// Number of files with a cached analysis.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached analysis for `rel_path`, if its content hash matches.
    pub fn get(&self, rel_path: &str, hash: &str) -> Option<&FileAnalysis> {
        self.entries
            .get(rel_path)
            .filter(|e| e.hash == hash)
            .map(|e| &e.analysis)
    }

    /// Records (or replaces) the analysis for one file.
    pub fn put(&mut self, rel_path: String, hash: String, analysis: FileAnalysis) {
        self.entries.insert(rel_path, Entry { hash, analysis });
        self.dirty = true;
    }

    /// The cached (already gated) workspace findings, if `combined` —
    /// the hash over every scanned (path, content-hash) pair — matches.
    pub fn get_workspace(&self, combined: &str) -> Option<(&[Finding], usize)> {
        self.workspace
            .as_ref()
            .filter(|w| w.combined == combined)
            .map(|w| (w.findings.as_slice(), w.suppressed))
    }

    /// Records the workspace-pass result for `combined`.
    pub fn put_workspace(&mut self, combined: String, findings: Vec<Finding>, suppressed: usize) {
        self.workspace = Some(WsEntry {
            combined,
            suppressed,
            findings,
        });
        self.dirty = true;
    }

    /// Drops entries for files no longer in the scan set, so deleted
    /// files cannot accumulate in the store.
    pub fn prune_to(&mut self, keep: &std::collections::BTreeSet<String>) {
        let before = self.entries.len();
        self.entries.retain(|path, _| keep.contains(path));
        if self.entries.len() != before {
            self.dirty = true;
        }
    }

    /// Whether anything changed since load — a fully-warm run skips the
    /// rewrite entirely.
    #[must_use]
    pub fn dirty(&self) -> bool {
        self.dirty
    }

    /// Writes the cache to `path` atomically (tmp + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; callers treat a failed save as a
    /// future cold cache, not a lint failure.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let mut out = String::with_capacity(64 * 1024);
        out.push_str(&format!(
            "tbstc-lint-cache\t{CACHE_VERSION}\t{}\n",
            escape(&self.fingerprint)
        ));
        for (path, e) in &self.entries {
            out.push_str(&format!("F\t{}\t{}\n", escape(path), e.hash));
            render_analysis(&e.analysis, &mut out);
        }
        if let Some(ws) = &self.workspace {
            out.push_str(&format!("W\t{}\t{}\n", ws.combined, ws.suppressed));
            for f in &ws.findings {
                out.push_str(&format!(
                    "R\t{}\t{}\t{}\t{}\t{}\t{}\n",
                    f.rule,
                    f.severity,
                    escape(&f.path),
                    f.line,
                    f.col,
                    escape(&f.message)
                ));
            }
        }
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        let tmp = path.with_extension("cache.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(out.as_bytes())?;
        }
        fs::rename(&tmp, path)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

fn render_analysis(a: &FileAnalysis, out: &mut String) {
    out.push_str(&format!("S\t{}\n", a.suppressed));
    for f in &a.findings {
        out.push_str(&format!(
            "D\t{}\t{}\t{}\t{}\t{}\n",
            f.rule,
            f.severity,
            f.line,
            f.col,
            escape(&f.message)
        ));
    }
    for (line, rules) in &a.allows {
        out.push_str(&format!("A\t{line}\t{}\n", escape(&rules.join(","))));
    }
    for &(lo, hi) in &a.test_ranges {
        out.push_str(&format!("T\t{lo}\t{hi}\n"));
    }
    for f in &a.facts.fns {
        out.push_str(&format!(
            "N\t{}\t{}\t{}\t{}\n",
            escape(&f.name),
            escape(&f.qual),
            f.line,
            f.end_line
        ));
        for c in &f.calls {
            out.push_str(&format!(
                "C\t{}\t{}\t{}\n",
                escape(&c.callee),
                c.line,
                c.col
            ));
        }
        for q in &f.acquires {
            out.push_str(&format!("Q\t{}\t{}\t{}\n", escape(&q.id), q.line, q.col));
        }
        for p in &f.pairs {
            out.push_str(&format!(
                "P\t{}\t{}\t{}\t{}\t{}\t{}\n",
                escape(&p.first.id),
                p.first.line,
                p.first.col,
                escape(&p.second.id),
                p.second.line,
                p.second.col
            ));
        }
        for h in &f.held_calls {
            out.push_str(&format!(
                "H\t{}\t{}\t{}\t{}\t{}\t{}\n",
                escape(&h.lock.id),
                h.lock.line,
                h.lock.col,
                escape(&h.callee),
                h.line,
                h.col
            ));
        }
        for x in &f.panics {
            out.push_str(&format!("X\t{}\t{}\t{}\n", escape(&x.what), x.line, x.col));
        }
    }
}

/// Parses one `R` (cached workspace finding) record; `None` drops the
/// whole workspace entry.
fn parse_ws_finding<'a>(fields: &mut impl Iterator<Item = &'a str>) -> Option<Finding> {
    let rule = static_rule_name(fields.next()?)?;
    let severity = match fields.next()? {
        "error" => Severity::Error,
        "warning" => Severity::Warning,
        _ => return None,
    };
    let path = unescape(fields.next()?);
    let line = fields.next()?.parse().ok()?;
    let col = fields.next()?.parse().ok()?;
    let message = unescape(fields.next()?);
    Some(Finding {
        rule,
        severity,
        path,
        line,
        col,
        message,
    })
}

/// Applies one record line to the analysis under construction. `None`
/// marks the record — and therefore the whole file entry — corrupt.
fn parse_record<'a>(
    tag: &str,
    fields: &mut impl Iterator<Item = &'a str>,
    a: &mut FileAnalysis,
) -> Option<()> {
    let num =
        |fields: &mut dyn Iterator<Item = &'a str>| -> Option<u32> { fields.next()?.parse().ok() };
    match tag {
        "S" => a.suppressed = num(fields)? as usize,
        "D" => {
            let rule = static_rule_name(fields.next()?)?;
            let severity = match fields.next()? {
                "error" => Severity::Error,
                "warning" => Severity::Warning,
                _ => return None,
            };
            let line = num(fields)?;
            let col = num(fields)?;
            let message = unescape(fields.next()?);
            a.findings.push(Finding {
                rule,
                severity,
                path: a.rel_path.clone(),
                line,
                col,
                message,
            });
        }
        "A" => {
            let line = num(fields)?;
            let rules: Vec<String> = unescape(fields.next()?)
                .split(',')
                .filter(|r| !r.is_empty())
                .map(str::to_string)
                .collect();
            a.allows.insert(line, rules);
        }
        "T" => {
            let lo = num(fields)?;
            let hi = num(fields)?;
            a.test_ranges.push((lo, hi));
        }
        "N" => {
            if a.facts.rel_path.is_empty() {
                a.facts.rel_path = a.rel_path.clone();
            }
            let name = unescape(fields.next()?);
            let qual = unescape(fields.next()?);
            let line = num(fields)?;
            let end_line = num(fields)?;
            a.facts.fns.push(FnFacts {
                name,
                qual,
                line,
                end_line,
                ..FnFacts::default()
            });
        }
        "C" => {
            let callee = unescape(fields.next()?);
            let line = num(fields)?;
            let col = num(fields)?;
            a.facts
                .fns
                .last_mut()?
                .calls
                .push(CallSite { callee, line, col });
        }
        "Q" => {
            let id = unescape(fields.next()?);
            let line = num(fields)?;
            let col = num(fields)?;
            a.facts
                .fns
                .last_mut()?
                .acquires
                .push(LockSite { id, line, col });
        }
        "P" => {
            let first = LockSite {
                id: unescape(fields.next()?),
                line: num(fields)?,
                col: num(fields)?,
            };
            let second = LockSite {
                id: unescape(fields.next()?),
                line: num(fields)?,
                col: num(fields)?,
            };
            a.facts
                .fns
                .last_mut()?
                .pairs
                .push(OrderedPair { first, second });
        }
        "H" => {
            let lock = LockSite {
                id: unescape(fields.next()?),
                line: num(fields)?,
                col: num(fields)?,
            };
            let callee = unescape(fields.next()?);
            let line = num(fields)?;
            let col = num(fields)?;
            a.facts.fns.last_mut()?.held_calls.push(HeldCall {
                lock,
                callee,
                line,
                col,
            });
        }
        "X" => {
            let what = unescape(fields.next()?);
            let line = num(fields)?;
            let col = num(fields)?;
            a.facts
                .fns
                .last_mut()?
                .panics
                .push(PanicSite { what, line, col });
        }
        _ => return None,
    }
    // An empty facts path on a file with no functions is fine; fix it
    // up so round-trips compare equal.
    if a.facts.rel_path.is_empty() {
        a.facts.rel_path = a.rel_path.clone();
    }
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze_source;

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a_128(b""), "6c62272e07bb014262b821756295c58d");
        assert_ne!(fnv1a_128(b"a"), fnv1a_128(b"b"));
        assert_eq!(fnv1a_128(b"abc").len(), 32);
    }

    #[test]
    fn round_trip_preserves_an_analysis() {
        let src = "\
fn handler(&self, x: Option<u32>) {
    let g = self.state.lock();
    helper(x);
    // tbstc-lint: allow(panic-surface) — demo suppression
    let v = x.unwrap();
}
fn helper(_x: Option<u32>) { other.lock(); }
";
        let a = analyze_source("crates/serve/src/demo.rs", src, None, None);
        let hash = fnv1a_128(src.as_bytes());
        let dir =
            std::env::temp_dir().join(format!("tbstc-lint-cache-test-{}", std::process::id()));
        let path = dir.join("cache.txt");
        let mut cache = LintCache::load(&path, "fp");
        cache.put(
            "crates/serve/src/demo.rs".to_string(),
            hash.clone(),
            a.clone(),
        );
        cache.save(&path).unwrap();

        let warm = LintCache::load(&path, "fp");
        let hit = warm.get("crates/serve/src/demo.rs", &hash).unwrap();
        assert_eq!(hit, &a);
        // Wrong hash or wrong fingerprint: a miss.
        assert!(warm.get("crates/serve/src/demo.rs", "0000").is_none());
        assert!(LintCache::load(&path, "other-fp")
            .get("crates/serve/src/demo.rs", &hash)
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn workspace_entry_round_trips_and_tracks_dirtiness() {
        let dir = std::env::temp_dir().join(format!("tbstc-lint-cache-ws-{}", std::process::id()));
        let path = dir.join("cache.txt");
        let mut cache = LintCache::load(&path, "fp");
        assert!(!cache.dirty(), "a fresh load starts clean");
        let finding = Finding {
            rule: "lock-order",
            severity: Severity::Error,
            path: "crates/serve/src/jobs.rs".to_string(),
            line: 4,
            col: 9,
            message: "cycle A -> B -> A\twith a tab".to_string(),
        };
        cache.put_workspace("c0mb1ned".to_string(), vec![finding.clone()], 2);
        assert!(cache.dirty());
        cache.save(&path).unwrap();

        let warm = LintCache::load(&path, "fp");
        assert!(!warm.dirty());
        let (findings, suppressed) = warm.get_workspace("c0mb1ned").unwrap();
        assert_eq!(findings, [finding]);
        assert_eq!(suppressed, 2);
        // A different combined hash (any file changed) is a miss.
        assert!(warm.get_workspace("other").is_none());

        // Pruning to a smaller scan set dirties; pruning to a superset
        // does not.
        let mut warm = warm;
        let keep: std::collections::BTreeSet<String> = ["x".to_string()].into_iter().collect();
        warm.prune_to(&keep);
        assert!(!warm.dirty(), "no file entries existed to prune");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_workspace_records_drop_only_the_workspace_entry() {
        let dir =
            std::env::temp_dir().join(format!("tbstc-lint-cache-wscorrupt-{}", std::process::id()));
        let path = dir.join("cache.txt");
        let a = analyze_source("crates/a/src/lib.rs", "fn ok() {}\n", None, None);
        let mut cache = LintCache::load(&path, "fp");
        cache.put("crates/a/src/lib.rs".into(), "h1".into(), a);
        cache.put_workspace("cmb".into(), Vec::new(), 0);
        cache.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text + "R\tno-such-rule\n").unwrap();
        let warm = LintCache::load(&path, "fp");
        assert!(warm.get_workspace("cmb").is_none());
        assert!(warm.get("crates/a/src/lib.rs", "h1").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_records_drop_only_their_file() {
        let dir =
            std::env::temp_dir().join(format!("tbstc-lint-cache-corrupt-{}", std::process::id()));
        let path = dir.join("cache.txt");
        let a = analyze_source("crates/a/src/lib.rs", "fn ok() {}\n", None, None);
        let b = analyze_source("crates/b/src/lib.rs", "fn also_ok() {}\n", None, None);
        let mut cache = LintCache::load(&path, "fp");
        cache.put("crates/a/src/lib.rs".into(), "h1".into(), a);
        cache.put("crates/b/src/lib.rs".into(), "h2".into(), b);
        cache.save(&path).unwrap();
        // Corrupt one record belonging to crates/a.
        let text = std::fs::read_to_string(&path).unwrap();
        let text = text.replace(
            "F\tcrates/a/src/lib.rs\th1\n",
            "F\tcrates/a/src/lib.rs\th1\nD\tno-such-rule\n",
        );
        std::fs::write(&path, text).unwrap();
        let warm = LintCache::load(&path, "fp");
        assert!(warm.get("crates/a/src/lib.rs", "h1").is_none());
        assert!(warm.get("crates/b/src/lib.rs", "h2").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
