//! Workspace-wide graphs over the per-file facts: the call graph and
//! the lock-acquisition-order graph.
//!
//! **Call graph.** Nodes are every function [`crate::syntax`] extracted;
//! edges resolve call sites by *simple name* — a call to `frob` points
//! at every workspace function named `frob`. That over-approximates
//! (two unrelated `new`s alias), which is the right polarity for both
//! consumers: panic-reachability may escalate a finding that a human
//! then suppresses with a reason, but it can never silently miss a
//! genuinely reachable panic because resolution was too clever.
//!
//! **Lock graph.** Nodes are normalized lock identities; an edge A → B
//! means some execution path acquires B while holding A — either
//! directly in one body (an ordered pair) or interprocedurally: a call
//! made under A's guard reaches a function whose *may-acquire* set
//! (its own acquisitions plus its callees', to fixpoint) contains B.
//! A cycle in this graph is a deadlock risk across the fleet's mutexes
//! and flock(2) store/job locks, reported with the acquisition sites
//! that close the cycle.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::syntax::{FileFacts, LockSite};

/// Where a lock edge was introduced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSite {
    /// Workspace-relative path of the function that closes the edge.
    pub path: String,
    /// Qualified name of that function.
    pub qual: String,
    /// The site of the held (first) lock's acquisition.
    pub first: LockSite,
    /// Line where the second lock is acquired (or the call that reaches
    /// it is made).
    pub line: u32,
    /// Column of that token.
    pub col: u32,
    /// Empty for a direct pair; the callee name for an edge introduced
    /// by a call under the guard.
    pub via_call: String,
}

/// One directed lock-order edge with its first witness site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// The held lock.
    pub from: String,
    /// The lock acquired under it.
    pub to: String,
    /// First witness for this edge (reports are deterministic: files
    /// are walked in sorted order).
    pub site: EdgeSite,
}

/// A function node in the workspace call graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnNode {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// Simple function name.
    pub name: String,
    /// Qualified name (`Scope::path::name`).
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Index range into the flattened facts (file index, fn index).
    pub file_idx: usize,
    /// Index of this function within its file's facts.
    pub fn_idx: usize,
}

/// The workspace call graph plus the derived lock graph.
pub struct Workspace<'a> {
    /// The per-file facts, in sorted-path order.
    pub files: &'a [FileFacts],
    /// Flattened function nodes.
    pub fns: Vec<FnNode>,
    /// Simple name → indices into `fns`.
    pub by_name: BTreeMap<&'a str, Vec<usize>>,
    /// Callee indices per function (resolved by simple name).
    pub callees: Vec<Vec<usize>>,
}

impl<'a> Workspace<'a> {
    /// Builds the call graph over `files`.
    pub fn build(files: &'a [FileFacts]) -> Workspace<'a> {
        let total: usize = files.iter().map(|f| f.fns.len()).sum();
        let mut fns = Vec::with_capacity(total);
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (file_idx, file) in files.iter().enumerate() {
            for (fn_idx, f) in file.fns.iter().enumerate() {
                by_name.entry(f.name.as_str()).or_default().push(fns.len());
                fns.push(FnNode {
                    path: file.rel_path.clone(),
                    name: f.name.clone(),
                    qual: f.qual.clone(),
                    line: f.line,
                    file_idx,
                    fn_idx,
                });
            }
        }
        let mut callees = Vec::with_capacity(fns.len());
        for node in &fns {
            let f = &files[node.file_idx].fns[node.fn_idx];
            let mut out: Vec<usize> = Vec::with_capacity(f.calls.len());
            for call in &f.calls {
                if let Some(targets) = by_name.get(call.callee.as_str()) {
                    out.extend_from_slice(targets);
                }
            }
            out.sort_unstable();
            out.dedup();
            callees.push(out);
        }
        Workspace {
            files,
            fns,
            by_name,
            callees,
        }
    }

    /// BFS from `roots` (indices into `fns`); returns, per function, the
    /// predecessor on a shortest call chain from a root (`usize::MAX`
    /// for roots themselves, `None` when unreachable).
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<Option<usize>> {
        let mut pred: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut queue = VecDeque::with_capacity(roots.len());
        for &r in roots {
            if pred[r].is_none() {
                pred[r] = Some(usize::MAX);
                queue.push_back(r);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &c in &self.callees[n] {
                if pred[c].is_none() {
                    pred[c] = Some(n);
                    queue.push_back(c);
                }
            }
        }
        pred
    }

    /// The call chain (`qual` names) from a root to `target`, given the
    /// predecessor array from [`Workspace::reachable_from`].
    pub fn chain_to(&self, pred: &[Option<usize>], target: usize) -> Vec<String> {
        let mut chain = Vec::with_capacity(8);
        let mut cur = target;
        let mut hops = 0usize;
        while hops < 64 {
            chain.push(self.fns[cur].qual.clone());
            match pred[cur] {
                Some(p) if p != usize::MAX => cur = p,
                _ => break,
            }
            hops += 1;
        }
        chain.reverse();
        chain
    }

    /// Per-function may-acquire sets (lock-id indices), to fixpoint over
    /// the call graph.
    fn may_acquire(&self, lock_ids: &BTreeMap<&str, usize>) -> Vec<BTreeSet<usize>> {
        let mut sets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); self.fns.len()];
        for (i, node) in self.fns.iter().enumerate() {
            let f = &self.files[node.file_idx].fns[node.fn_idx];
            for a in &f.acquires {
                if let Some(&id) = lock_ids.get(a.id.as_str()) {
                    sets[i].insert(id);
                }
            }
        }
        // Reverse-propagate to fixpoint: callers absorb callees' sets.
        let mut changed = true;
        let mut rounds = 0usize;
        while changed && rounds < 64 {
            changed = false;
            rounds += 1;
            for i in 0..self.fns.len() {
                let mut add: Vec<usize> = Vec::with_capacity(4);
                for &c in &self.callees[i] {
                    if c == i {
                        continue;
                    }
                    for &id in &sets[c] {
                        if !sets[i].contains(&id) {
                            add.push(id);
                        }
                    }
                }
                if !add.is_empty() {
                    changed = true;
                    sets[i].extend(add);
                }
            }
        }
        sets
    }

    /// Builds the lock-order edge set: direct in-body pairs plus
    /// call-under-guard edges through may-acquire propagation.
    /// Self-edges (A held while A is re-acquired) are kept only for
    /// direct pairs — interprocedural self-edges are dominated by the
    /// name-based over-approximation, direct ones are a real
    /// double-acquire.
    pub fn lock_edges(&self) -> Vec<LockEdge> {
        // Stable lock-id universe.
        let mut lock_ids: BTreeMap<&str, usize> = BTreeMap::new();
        for file in self.files {
            for f in &file.fns {
                for a in &f.acquires {
                    let next = lock_ids.len();
                    lock_ids.entry(a.id.as_str()).or_insert(next);
                }
            }
        }
        let mut id_names: Vec<&str> = vec![""; lock_ids.len()];
        for (name, &id) in &lock_ids {
            id_names[id] = name;
        }
        let may = self.may_acquire(&lock_ids);
        let mut first_witness: BTreeMap<(String, String), EdgeSite> = BTreeMap::new();

        for node in &self.fns {
            let f = &self.files[node.file_idx].fns[node.fn_idx];
            for p in &f.pairs {
                let key = (p.first.id.clone(), p.second.id.clone());
                first_witness.entry(key).or_insert_with(|| EdgeSite {
                    path: node.path.clone(),
                    qual: node.qual.clone(),
                    first: p.first.clone(),
                    line: p.second.line,
                    col: p.second.col,
                    via_call: String::new(),
                });
            }
            for hc in &f.held_calls {
                let Some(targets) = self.by_name.get(hc.callee.as_str()) else {
                    continue;
                };
                for &t in targets {
                    for &acquired in &may[t] {
                        let to = id_names[acquired];
                        if to == hc.lock.id {
                            continue; // interprocedural self-edge: skip
                        }
                        let key = (hc.lock.id.clone(), to.to_string());
                        first_witness.entry(key).or_insert_with(|| EdgeSite {
                            path: node.path.clone(),
                            qual: node.qual.clone(),
                            first: hc.lock.clone(),
                            line: hc.line,
                            col: hc.col,
                            via_call: hc.callee.clone(),
                        });
                    }
                }
            }
        }
        first_witness
            .into_iter()
            .map(|((from, to), site)| LockEdge { from, to, site })
            .collect()
    }
}

/// One deadlock-risk cycle: the lock ids in order plus the witness edge
/// sites that close it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockCycle {
    /// Lock ids around the cycle (first repeated implicitly).
    pub locks: Vec<String>,
    /// The witness edges, one per hop.
    pub edges: Vec<LockEdge>,
}

/// Finds elementary cycles in the lock-order edge set. Each cycle is
/// reported once, canonicalized to start at its lexicographically
/// smallest lock id.
pub fn find_cycles(edges: &[LockEdge]) -> Vec<LockCycle> {
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut out: Vec<LockCycle> = Vec::with_capacity(4);

    // DFS from every node, tracking the path; a back-edge to the path
    // head closes an elementary cycle. Lock graphs here are tiny
    // (tens of nodes), so the simple enumeration is fine.
    fn dfs<'e>(
        node: &str,
        head: &str,
        adj: &BTreeMap<&str, Vec<&'e LockEdge>>,
        path: &mut Vec<&'e LockEdge>,
        on_path: &mut BTreeSet<String>,
        seen: &mut BTreeSet<Vec<String>>,
        out: &mut Vec<LockCycle>,
    ) {
        if path.len() > 16 {
            return;
        }
        let Some(nexts) = adj.get(node) else { return };
        for e in nexts {
            if e.to == head {
                let mut cycle_edges: Vec<LockEdge> = path.iter().map(|p| (*p).clone()).collect();
                cycle_edges.push((*e).clone());
                let mut locks: Vec<String> = cycle_edges.iter().map(|e| e.from.clone()).collect();
                // Canonical rotation for dedup.
                let min_pos = locks
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, l)| l.clone())
                    .map_or(0, |(i, _)| i);
                locks.rotate_left(min_pos);
                cycle_edges.rotate_left(min_pos);
                if seen.insert(locks.clone()) {
                    out.push(LockCycle {
                        locks,
                        edges: cycle_edges,
                    });
                }
            } else if !on_path.contains(&e.to) {
                on_path.insert(e.to.clone());
                path.push(e);
                dfs(&e.to, head, adj, path, on_path, seen, out);
                path.pop();
                on_path.remove(&e.to);
            }
        }
    }

    let heads: Vec<&str> = adj.keys().copied().collect();
    for head in heads {
        let mut path = Vec::with_capacity(8);
        let mut on_path: BTreeSet<String> = BTreeSet::new();
        on_path.insert(head.to_string());
        dfs(
            head,
            head,
            &adj,
            &mut path,
            &mut on_path,
            &mut seen,
            &mut out,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::syntax::extract;

    fn facts_of(files: &[(&str, &str)]) -> Vec<FileFacts> {
        files
            .iter()
            .map(|(path, src)| {
                let tokens = lex(src);
                let code: Vec<_> = tokens.iter().filter(|t| !t.is_comment()).cloned().collect();
                extract(path, src, &code, &[])
            })
            .collect()
    }

    #[test]
    fn call_graph_resolves_by_simple_name_across_files() {
        let files = facts_of(&[
            ("crates/a/src/lib.rs", "fn entry() { helper(); }\n"),
            (
                "crates/b/src/lib.rs",
                "fn helper() { leaf(); }\nfn leaf() {}\n",
            ),
        ]);
        let ws = Workspace::build(&files);
        let entry = ws.fns.iter().position(|f| f.name == "entry").unwrap();
        let leaf = ws.fns.iter().position(|f| f.name == "leaf").unwrap();
        let pred = ws.reachable_from(&[entry]);
        assert!(pred[leaf].is_some());
        assert_eq!(ws.chain_to(&pred, leaf), ["entry", "helper", "leaf"]);
    }

    #[test]
    fn direct_two_lock_cycle_is_found_with_both_sites() {
        let files = facts_of(&[(
            "crates/demo/src/locks.rs",
            "\
fn ab(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let g1 = a.lock();
    let g2 = b.lock();
}
fn ba(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let g2 = b.lock();
    let g1 = a.lock();
}
",
        )]);
        let ws = Workspace::build(&files);
        let edges = ws.lock_edges();
        let cycles = find_cycles(&edges);
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert_eq!(cycles[0].locks, ["locks.a", "locks.b"]);
        let lines: Vec<u32> = cycles[0].edges.iter().map(|e| e.site.line).collect();
        assert_eq!(lines, [3, 7]);
    }

    #[test]
    fn interprocedural_edge_through_a_call_under_guard() {
        let files = facts_of(&[(
            "crates/demo/src/locks.rs",
            "\
fn outer(a: &std::sync::Mutex<u32>) {
    let g = a.lock();
    inner();
}
fn inner() {
    let g = B.lock();
}
fn other(a: &std::sync::Mutex<u32>) {
    let g = B.lock();
    let h = a.lock();
}
",
        )]);
        let ws = Workspace::build(&files);
        let edges = ws.lock_edges();
        assert!(
            edges
                .iter()
                .any(|e| e.from == "locks.a" && e.to == "locks.B" && e.site.via_call == "inner"),
            "{edges:?}"
        );
        let cycles = find_cycles(&edges);
        assert_eq!(cycles.len(), 1);
    }

    #[test]
    fn consistent_order_has_no_cycles() {
        let files = facts_of(&[(
            "crates/demo/src/locks.rs",
            "\
fn f1(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let g1 = a.lock();
    let g2 = b.lock();
}
fn f2(a: &std::sync::Mutex<u32>, b: &std::sync::Mutex<u32>) {
    let g1 = a.lock();
    let g2 = b.lock();
}
",
        )]);
        let ws = Workspace::build(&files);
        assert!(find_cycles(&ws.lock_edges()).is_empty());
    }
}
