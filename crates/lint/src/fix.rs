//! `lint --fix`: mechanical remediation.
//!
//! Rewriting code semantically (`Vec::new()` → `Vec::with_capacity(..)`)
//! is out of scope — the right capacity is a human decision. What *is*
//! mechanical:
//!
//! * **suppression insertion** — for the two suppression-oriented rules
//!   ([`FIXABLE_RULES`]: `hot-path-alloc`, `determinism`), insert a
//!   `// tbstc-lint: allow(<rule>) — TODO(lint-fix): …` line above each
//!   failing warning. The TODO keeps the debt visible in review; errors
//!   are never auto-suppressed;
//! * **baseline burndown** — delete stale baseline entries (fixed code
//!   whose grandfathered findings no longer match), so the baseline
//!   only ever shrinks without hand-editing.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

use crate::engine::{LintReport, Severity};

/// Rules whose warnings `--fix` may suppress with a TODO justification.
/// Both explicitly invite suppression-with-reason in their messages;
/// everything else needs a code change or a human-written reason.
pub const FIXABLE_RULES: &[&str] = &["hot-path-alloc", "determinism"];

/// What one `--fix` pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FixOutcome {
    /// Source files rewritten.
    pub files_changed: usize,
    /// Suppression comments inserted.
    pub suppressions_inserted: usize,
    /// Stale entries removed from the baseline file.
    pub stale_removed: usize,
}

/// Applies every mechanical fix the report justifies: suppression
/// comments above fixable warnings (one comment per line, naming every
/// fixable rule that fired there) and stale-entry removal from the
/// baseline at `baseline_path`.
///
/// # Errors
///
/// Returns a message when a source file cannot be read or written; the
/// baseline is only touched when it exists.
pub fn apply_fixes(
    root: &Path,
    report: &LintReport,
    baseline_path: &Path,
) -> Result<FixOutcome, String> {
    let mut outcome = FixOutcome::default();

    // path → line → fixable rules that fired there.
    let mut by_file: BTreeMap<&str, BTreeMap<u32, Vec<&'static str>>> = BTreeMap::new();
    for f in &report.findings {
        if f.severity == Severity::Warning && FIXABLE_RULES.contains(&f.rule) {
            by_file
                .entry(f.path.as_str())
                .or_default()
                .entry(f.line)
                .or_default()
                .push(f.rule);
        }
    }

    for (rel, lines_map) in by_file {
        let abs = root.join(rel);
        let src =
            fs::read_to_string(&abs).map_err(|e| format!("cannot read {}: {e}", abs.display()))?;
        let mut lines: Vec<String> = src.lines().map(str::to_string).collect();
        // Insert bottom-up so earlier line numbers stay valid.
        for (&line, rules) in lines_map.iter().rev() {
            let idx = (line as usize).saturating_sub(1);
            if idx >= lines.len() {
                continue;
            }
            let indent: String = lines[idx]
                .chars()
                .take_while(|c| *c == ' ' || *c == '\t')
                .collect();
            let mut rules = rules.clone();
            rules.sort_unstable();
            rules.dedup();
            lines.insert(
                idx,
                format!(
                    "{indent}// tbstc-lint: allow({}) — TODO(lint-fix): justify or restructure",
                    rules.join(", ")
                ),
            );
            outcome.suppressions_inserted += 1;
        }
        let mut text = lines.join("\n");
        if src.ends_with('\n') {
            text.push('\n');
        }
        fs::write(&abs, text).map_err(|e| format!("cannot write {}: {e}", abs.display()))?;
        outcome.files_changed += 1;
    }

    if !report.stale_baseline.is_empty() {
        if let Ok(text) = fs::read_to_string(baseline_path) {
            let mut lines: Vec<&str> = text.lines().collect();
            for stale in &report.stale_baseline {
                if let Some(pos) = lines.iter().position(|l| l == stale) {
                    lines.remove(pos);
                    outcome.stale_removed += 1;
                }
            }
            if outcome.stale_removed > 0 {
                let mut out = lines.join("\n");
                out.push('\n');
                fs::write(baseline_path, out)
                    .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
            }
        }
    }

    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{lint_source, Finding};

    fn report_with(findings: Vec<Finding>, stale: Vec<String>) -> LintReport {
        LintReport {
            findings,
            stale_baseline: stale,
            ..LintReport::default()
        }
    }

    #[test]
    fn inserts_a_suppression_that_actually_suppresses() {
        let dir = std::env::temp_dir().join(format!("tbstc-lint-fix-{}", std::process::id()));
        let rel = "crates/demo/src/x.rs";
        let abs = dir.join(rel);
        fs::create_dir_all(abs.parent().unwrap()).unwrap();
        let src = "fn f() {\n    let mut v = Vec::new();\n    v.push(1);\n}\n";
        fs::write(&abs, src).unwrap();

        let findings = lint_source(rel, src);
        assert!(findings.iter().any(|f| f.rule == "hot-path-alloc"));
        let report = report_with(findings, Vec::new());
        let outcome = apply_fixes(&dir, &report, &dir.join("no-baseline")).unwrap();
        assert_eq!(outcome.files_changed, 1);
        assert_eq!(outcome.suppressions_inserted, 1);

        let fixed = fs::read_to_string(&abs).unwrap();
        assert!(fixed.contains("// tbstc-lint: allow(hot-path-alloc)"));
        assert!(
            !lint_source(rel, &fixed)
                .iter()
                .any(|f| f.rule == "hot-path-alloc"),
            "{fixed}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn errors_are_never_auto_suppressed() {
        let dir = std::env::temp_dir().join(format!("tbstc-lint-fix-err-{}", std::process::id()));
        let rel = "crates/demo/src/y.rs";
        let abs = dir.join(rel);
        fs::create_dir_all(abs.parent().unwrap()).unwrap();
        let src = "fn f(m: &std::sync::Mutex<u32>) { let g = m.lock().unwrap(); }\n";
        fs::write(&abs, src).unwrap();
        let findings = lint_source(rel, src);
        assert!(findings.iter().any(|f| f.severity == Severity::Error));
        let outcome =
            apply_fixes(&dir, &report_with(findings, Vec::new()), &dir.join("nb")).unwrap();
        assert_eq!(outcome.suppressions_inserted, 0);
        assert_eq!(fs::read_to_string(&abs).unwrap(), src);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_baseline_entries_are_burned_down_count_aware() {
        let dir = std::env::temp_dir().join(format!("tbstc-lint-fix-bl-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("lint-baseline.txt");
        fs::write(
            &baseline,
            "# header\nrule\ta.rs\tline one\nrule\ta.rs\tline one\nrule\tb.rs\tkept\n",
        )
        .unwrap();
        // One of the two duplicate entries is stale; exactly one copy
        // must be removed.
        let report = report_with(Vec::new(), vec!["rule\ta.rs\tline one".to_string()]);
        let outcome = apply_fixes(&dir, &report, &baseline).unwrap();
        assert_eq!(outcome.stale_removed, 1);
        let text = fs::read_to_string(&baseline).unwrap();
        assert_eq!(text.matches("line one").count(), 1);
        assert!(text.contains("kept"));
        let _ = fs::remove_dir_all(&dir);
    }
}
