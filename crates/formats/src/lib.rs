//! Sparse storage formats and the adaptive codec for the TB-STC
//! reproduction (paper §V).
//!
//! The TBS pattern mixes row-compressed and column-compressed blocks in one
//! matrix, which defeats classical formats:
//!
//! * [`sdc::Sdc`] — **single-dimensional compression**: rows padded to the
//!   longest row. Contiguous but redundant (paper: >61.5 % redundant
//!   traffic on TBS matrices).
//! * [`csr::Csr`] — **compressed sparse row**: minimal storage, but a
//!   block-oriented consumer must gather scattered row segments
//!   (paper: <38.2 % bandwidth utilization).
//! * [`ddc::Ddc`] — the paper's **dual-dimensional compression**: a 16-bit
//!   per-block info word (sparsity dimension, ratio, element offset) plus
//!   intra-block data compressed along the block's own sparsity dimension.
//!   Contiguous *and* minimal.
//! * [`codec::CodecUnit`] — the adaptive codec that converts
//!   independent-dimension blocks from storage format to computation
//!   format on the fly (queue group + merger network, paper Fig. 9).
//!
//! Every format round-trips: `decode(encode(w)) == w` for any masked
//! matrix (tested per format and in the cross-format property tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod codec;
pub mod csr;
pub mod ddc;
pub mod sdc;

pub use access::{AccessTrace, MemRequest};
pub use codec::{CodecStats, CodecUnit};
pub use csr::Csr;
pub use ddc::Ddc;
pub use sdc::Sdc;

/// Bytes per stored fp16 value.
pub const VALUE_BYTES: u64 = 2;
/// Bytes per stored element index (intra-tile positions fit in one byte).
pub const INDEX_BYTES: u64 = 1;
