//! Dual-dimensional compression (DDC) — the paper's storage format
//! (§V-A, Fig. 8).
//!
//! DDC stores a TBS matrix block-wise in two parts:
//!
//! * **Inter-block**: a 16-bit info word per block —
//!   `[1 bit sparsity dim | 3 bits sparsity ratio | 12 bits element offset]`,
//! * **Intra-block**: the block's non-zeros compressed *along the block's
//!   own sparsity dimension* (row-major for reduction-dim blocks,
//!   column-major for independent-dim blocks), each with its 3–4 bit
//!   intra-lane index.
//!
//! Because blocks are stored in consumption order and carry no padding,
//! DDC is both contiguous and minimal — the property the adaptive codec
//! architecture exploits for its 1.47× bandwidth-utilization gain.

use tbstc_matrix::Matrix;
use tbstc_sparsity::{SparsityDim, TbsPattern};

use crate::access::{AccessTrace, MemRequest};
use crate::VALUE_BYTES;

/// Bytes per info-table entry (16 bits, Fig. 8(a)).
pub const INFO_BYTES: u64 = 2;
/// Bytes per intra-block element index (4-bit indices, two packed per
/// byte; accounted as half a byte each).
pub const PACKED_INDEX_BITS: u64 = 4;

/// One stored element of a DDC block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DdcElement {
    /// Index along the *storage* dimension (the lane being walked).
    pub lane: usize,
    /// Index within the lane (the stored 4-bit index).
    pub idx: usize,
    /// The non-zero value.
    pub value: f32,
}

impl DdcElement {
    /// Original block-local `(row, col)` given the block's sparsity dim.
    pub fn position(&self, dim: SparsityDim) -> (usize, usize) {
        match dim {
            SparsityDim::Reduction => (self.lane, self.idx),
            SparsityDim::Independent => (self.idx, self.lane),
        }
    }
}

/// One encoded block: the info-word fields plus its element stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DdcBlock {
    /// Block-row in the block grid.
    pub block_row: usize,
    /// Block-column in the block grid.
    pub block_col: usize,
    /// The block's sparsity dimension (the info word's 1-bit field).
    pub dim: SparsityDim,
    /// The block's `N` (the info word's 3-bit ratio field encodes the
    /// index of `N` in the candidate ladder).
    pub n: usize,
    /// Element offset from the start of the value region, in elements.
    pub offset: u64,
    /// The stored elements in storage order (lane-major along `dim`).
    pub elements: Vec<DdcElement>,
}

impl DdcBlock {
    /// Packs the 16-bit info word: `[dim:1 | ratio:3 | offset:12]`.
    ///
    /// The offset field wraps modulo 4096 exactly as the 12-bit hardware
    /// field does; the full offset is tracked separately in software.
    pub fn info_word(&self, n_candidates: &[usize]) -> u16 {
        let dim_bit = u16::from(self.dim == SparsityDim::Independent) << 15;
        let ratio = n_candidates
            .iter()
            .position(|&c| c == self.n)
            .expect("block N must be a configured candidate") as u16;
        dim_bit | (ratio << 12) | ((self.offset & 0x0FFF) as u16)
    }
}

/// A TBS matrix in dual-dimensional compression.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::rng::MatrixRng;
/// use tbstc_sparsity::{TbsConfig, TbsPattern};
/// use tbstc_formats::Ddc;
///
/// let w = MatrixRng::seed_from(0).block_structured_weights(32, 32, 8);
/// let pattern = TbsPattern::sparsify(&w, 0.5, &TbsConfig::paper_default());
/// let pruned = pattern.mask().apply(&w);
/// let ddc = Ddc::encode(&pruned, &pattern);
/// assert_eq!(ddc.decode(), pruned);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ddc {
    rows: usize,
    cols: usize,
    m: usize,
    n_candidates: Vec<usize>,
    blocks: Vec<DdcBlock>,
    nnz: usize,
}

impl Ddc {
    /// Encodes the pruned matrix `w` under `pattern`.
    ///
    /// `w` is expected to already be masked (`pattern.mask().apply(...)`);
    /// any non-zero outside the mask is ignored.
    ///
    /// # Panics
    ///
    /// Panics when `w`'s shape differs from the pattern's mask.
    pub fn encode(w: &Matrix, pattern: &TbsPattern) -> Self {
        assert_eq!(
            w.shape(),
            pattern.mask().shape(),
            "matrix/pattern shape mismatch"
        );
        let m = pattern.config().m;
        let mask = pattern.mask();
        let mut blocks = Vec::with_capacity(pattern.blocks().len());
        let mut offset = 0u64;
        let mut nnz = 0usize;
        for info in pattern.blocks() {
            let (r0, c0) = info.coord.origin(m);
            let mut elements = Vec::new();
            // Walk lanes along the block's own sparsity dimension.
            for lane in 0..m {
                for idx in 0..m {
                    let (r, c) = match info.dim {
                        SparsityDim::Reduction => (r0 + lane, c0 + idx),
                        SparsityDim::Independent => (r0 + idx, c0 + lane),
                    };
                    if r < w.rows() && c < w.cols() && mask.get(r, c) && w[(r, c)] != 0.0 {
                        elements.push(DdcElement {
                            lane,
                            idx,
                            value: w[(r, c)],
                        });
                    }
                }
            }
            nnz += elements.len();
            let len = elements.len() as u64;
            blocks.push(DdcBlock {
                block_row: info.coord.block_row,
                block_col: info.coord.block_col,
                dim: info.dim,
                n: info.n,
                offset,
                elements,
            });
            offset += len;
        }
        Ddc {
            rows: w.rows(),
            cols: w.cols(),
            m,
            n_candidates: pattern.config().n_candidates.clone(),
            blocks,
            nnz,
        }
    }

    /// Reconstructs the pruned dense matrix.
    pub fn decode(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for b in &self.blocks {
            let (r0, c0) = (b.block_row * self.m, b.block_col * self.m);
            for e in &b.elements {
                let (dr, dc) = e.position(b.dim);
                let (r, c) = (r0 + dr, c0 + dc);
                if r < self.rows && c < self.cols {
                    out[(r, c)] = e.value;
                }
            }
        }
        out
    }

    /// The encoded blocks in storage order.
    pub fn blocks(&self) -> &[DdcBlock] {
        &self.blocks
    }

    /// Stored non-zero count.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Block size `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The candidate ladder used for the 3-bit ratio field.
    pub fn n_candidates(&self) -> &[usize] {
        &self.n_candidates
    }

    /// Info-table bytes (2 per block).
    pub fn info_bytes(&self) -> u64 {
        self.blocks.len() as u64 * INFO_BYTES
    }

    /// Value + packed-index bytes.
    pub fn data_bytes(&self) -> u64 {
        let value = self.nnz as u64 * VALUE_BYTES;
        let index = (self.nnz as u64 * PACKED_INDEX_BITS).div_ceil(8);
        value + index
    }

    /// Total stored bytes.
    pub fn stored_bytes(&self) -> u64 {
        self.info_bytes() + self.data_bytes()
    }

    /// The consumption access trace: the info table as one contiguous read
    /// followed by each block's data in storage (= consumption) order —
    /// fully sequential, no padding.
    pub fn access_trace(&self) -> AccessTrace {
        let mut trace = AccessTrace::new();
        if self.info_bytes() > 0 {
            trace.push(MemRequest {
                addr: 0,
                bytes: self.info_bytes(),
            });
        }
        let base = self.info_bytes();
        let elem_bytes = VALUE_BYTES as f64 + PACKED_INDEX_BITS as f64 / 8.0;
        let mut cursor = base;
        for b in &self.blocks {
            let bytes = (b.elements.len() as f64 * elem_bytes).ceil() as u64;
            if bytes > 0 {
                trace.push(MemRequest {
                    addr: cursor,
                    bytes,
                });
                cursor += bytes;
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tbstc_matrix::rng::MatrixRng;
    use tbstc_sparsity::TbsConfig;

    fn make(seed: u64, rows: usize, cols: usize, target: f64) -> (Matrix, TbsPattern) {
        let w = MatrixRng::seed_from(seed).block_structured_weights(rows, cols, 8);
        let p = TbsPattern::sparsify(&w, target, &TbsConfig::paper_default());
        (p.mask().apply(&w), p)
    }

    #[test]
    fn round_trip() {
        let (pruned, pattern) = make(1, 32, 32, 0.5);
        let ddc = Ddc::encode(&pruned, &pattern);
        assert_eq!(ddc.decode(), pruned);
    }

    #[test]
    fn round_trip_non_multiple_shape() {
        let (pruned, pattern) = make(2, 20, 28, 0.6);
        let ddc = Ddc::encode(&pruned, &pattern);
        assert_eq!(ddc.decode(), pruned);
    }

    #[test]
    fn round_trip_extreme_sparsities() {
        for &t in &[0.0, 1.0] {
            let (pruned, pattern) = make(3, 16, 16, t);
            let ddc = Ddc::encode(&pruned, &pattern);
            assert_eq!(ddc.decode(), pruned);
        }
    }

    #[test]
    fn nnz_matches_matrix() {
        let (pruned, pattern) = make(4, 64, 64, 0.75);
        let ddc = Ddc::encode(&pruned, &pattern);
        assert_eq!(ddc.nnz(), pruned.count_nonzeros());
    }

    #[test]
    fn info_word_packs_fields() {
        let b = DdcBlock {
            block_row: 0,
            block_col: 0,
            dim: SparsityDim::Independent,
            n: 4,
            offset: 0x0ABC,
            elements: vec![],
        };
        let word = b.info_word(&[0, 1, 2, 4, 8]);
        assert_eq!(word >> 15, 1, "dim bit");
        assert_eq!((word >> 12) & 0x7, 3, "ratio index of N=4");
        assert_eq!(word & 0x0FFF, 0x0ABC, "offset field");
    }

    #[test]
    fn info_word_offset_wraps_mod_4096() {
        let b = DdcBlock {
            block_row: 0,
            block_col: 0,
            dim: SparsityDim::Reduction,
            n: 2,
            offset: 4096 + 5,
            elements: vec![],
        };
        assert_eq!(b.info_word(&[0, 1, 2, 4, 8]) & 0x0FFF, 5);
    }

    #[test]
    fn storage_beats_sdc_on_tbs() {
        // The Fig. 7 comparison: on a TBS matrix DDC stores close to nnz
        // while SDC pays the max-row padding.
        let (pruned, pattern) = make(5, 64, 64, 0.75);
        let ddc = Ddc::encode(&pruned, &pattern);
        let sdc = crate::sdc::Sdc::encode(&pruned);
        assert!(
            ddc.stored_bytes() < sdc.stored_bytes(),
            "DDC {} < SDC {}",
            ddc.stored_bytes(),
            sdc.stored_bytes()
        );
    }

    #[test]
    fn trace_is_fully_contiguous() {
        let (pruned, pattern) = make(6, 64, 64, 0.5);
        let ddc = Ddc::encode(&pruned, &pattern);
        assert_eq!(ddc.access_trace().contiguity(), 1.0);
    }

    #[test]
    fn offsets_are_cumulative() {
        let (pruned, pattern) = make(7, 32, 32, 0.5);
        let ddc = Ddc::encode(&pruned, &pattern);
        let mut expect = 0u64;
        for b in ddc.blocks() {
            assert_eq!(b.offset, expect);
            expect += b.elements.len() as u64;
        }
    }

    #[test]
    fn storage_order_follows_block_dim() {
        // In a reduction-dim block, storage walks rows; elements of the
        // same lane appear together with increasing idx.
        let (pruned, pattern) = make(8, 32, 32, 0.5);
        let ddc = Ddc::encode(&pruned, &pattern);
        for b in ddc.blocks() {
            let mut prev: Option<(usize, usize)> = None;
            for e in &b.elements {
                if let Some((pl, pi)) = prev {
                    assert!(
                        e.lane > pl || (e.lane == pl && e.idx > pi),
                        "lane-major order violated"
                    );
                }
                prev = Some((e.lane, e.idx));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn round_trip_any_target(seed in 0u64..50, t in 0u32..=100) {
            let (pruned, pattern) = make(seed, 24, 24, f64::from(t) / 100.0);
            let ddc = Ddc::encode(&pruned, &pattern);
            prop_assert_eq!(ddc.decode(), pruned);
        }

        #[test]
        fn ddc_never_larger_than_dense(seed in 0u64..50) {
            let (pruned, pattern) = make(seed, 32, 32, 0.5);
            let ddc = Ddc::encode(&pruned, &pattern);
            let dense_bytes = 32 * 32 * VALUE_BYTES;
            prop_assert!(ddc.stored_bytes() <= dense_bytes);
        }
    }
}
