//! The adaptive codec unit — on-the-fly storage→computation format
//! conversion (paper §V-B, Fig. 9).
//!
//! Reduction-dimension blocks are stored row-compressed, which is already
//! the computation format (Fig. 9(a)): they pass through untouched.
//! Independent-dimension blocks are stored **column**-compressed (minimal
//! storage) but the DVPE consumes **row**-compressed groups (maximal
//! memory efficiency), so the codec converts between them (Fig. 9(b,c)):
//!
//! 1. each cycle the codec ingests up to `input_width` elements of the
//!    storage stream (value + its reduction-dimension index *Rid*),
//! 2. a **queue group** buckets elements by Rid,
//! 3. when a queue reaches the `threshold`, one output group is emitted
//!    that cycle,
//! 4. after the stream ends, the **merger network** drains the remaining
//!    queue contents, combining partial groups.
//!
//! The returned [`CodecStats`] feed the simulator's pipeline model; the
//! paper measures the conversion at ~3.57 % of execution cycles and fully
//! hidden in the pipeline (Fig. 14).

use tbstc_sparsity::SparsityDim;

use crate::ddc::{DdcBlock, DdcElement};

/// Cycle and occupancy statistics of one block conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodecStats {
    /// Cycles spent ingesting the storage stream.
    pub ingest_cycles: u64,
    /// Extra cycles the merger needed to drain leftovers.
    pub merge_cycles: u64,
    /// Peak total elements buffered across the queue group.
    pub peak_occupancy: usize,
    /// Number of output groups emitted.
    pub groups: usize,
}

impl CodecStats {
    /// Total conversion cycles.
    pub fn total_cycles(&self) -> u64 {
        self.ingest_cycles + self.merge_cycles
    }

    /// Accumulates another block's stats (pipelined back to back).
    pub fn merge(&mut self, other: &CodecStats) {
        self.ingest_cycles += other.ingest_cycles;
        self.merge_cycles += other.merge_cycles;
        self.peak_occupancy = self.peak_occupancy.max(other.peak_occupancy);
        self.groups += other.groups;
    }
}

/// The adaptive codec unit: queue group + merger network.
///
/// # Examples
///
/// ```
/// use tbstc_formats::CodecUnit;
///
/// let codec = CodecUnit::paper_default();
/// assert_eq!(codec.threshold(), 2);
/// assert_eq!(codec.input_width(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodecUnit {
    /// Elements ingested per cycle (the paper's example ingests 2).
    input_width: usize,
    /// Queue length that triggers an output group (the paper uses 2).
    threshold: usize,
    /// Number of queues (one per reduction-dimension lane, `M`).
    queues: usize,
}

impl CodecUnit {
    /// The paper's configuration: width 2, threshold 2, `M = 8` queues.
    pub fn paper_default() -> Self {
        CodecUnit {
            input_width: 2,
            threshold: 2,
            queues: 8,
        }
    }

    /// A custom codec.
    ///
    /// # Panics
    ///
    /// Panics when any parameter is zero.
    pub fn new(input_width: usize, threshold: usize, queues: usize) -> Self {
        assert!(
            input_width > 0 && threshold > 0 && queues > 0,
            "codec params positive"
        );
        CodecUnit {
            input_width,
            threshold,
            queues,
        }
    }

    /// Elements ingested per cycle.
    pub fn input_width(&self) -> usize {
        self.input_width
    }

    /// Queue output threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Queue count.
    pub fn queues(&self) -> usize {
        self.queues
    }

    /// Converts one block from storage to computation format.
    ///
    /// Reduction-dimension blocks are returned as-is with zero-cost stats.
    /// Independent-dimension blocks are re-grouped by reduction index via
    /// the queue-group simulation.
    ///
    /// The returned element list is the computation-format stream: groups
    /// of elements sharing (mostly) one reduction lane, in emission order.
    ///
    /// # Panics
    ///
    /// Panics when an element's reduction index exceeds the queue count.
    pub fn convert_block(&self, block: &DdcBlock) -> (Vec<DdcElement>, CodecStats) {
        if block.dim == SparsityDim::Reduction {
            // Fig. 9(a): already in computation format.
            return (block.elements.clone(), CodecStats::default());
        }

        // Fig. 9(c): queue group keyed by the reduction index (for an
        // independent-dim block the stored `idx` *is* the row index).
        let mut queues: Vec<Vec<DdcElement>> = vec![Vec::new(); self.queues];
        let mut out = Vec::with_capacity(block.elements.len());
        let mut stats = CodecStats::default();
        let mut stream = block.elements.iter().copied().peekable();

        while stream.peek().is_some() {
            stats.ingest_cycles += 1;
            for _ in 0..self.input_width {
                let Some(e) = stream.next() else { break };
                let rid = e.idx;
                assert!(
                    rid < self.queues,
                    "Rid {rid} exceeds queue count {}",
                    self.queues
                );
                queues[rid].push(e);
            }
            let occupancy: usize = queues.iter().map(Vec::len).sum();
            stats.peak_occupancy = stats.peak_occupancy.max(occupancy);
            // One output group per cycle when some queue is full enough.
            if let Some(q) = queues.iter_mut().find(|q| q.len() >= self.threshold) {
                out.append(q);
                stats.groups += 1;
            }
        }

        // Merger network: drain leftovers, `threshold` elements per cycle,
        // combining across queues in the final timesteps.
        let mut leftovers: Vec<DdcElement> = queues.into_iter().flatten().collect();
        // Keep row-groups together in the drain order.
        leftovers.sort_by_key(|e| e.idx);
        while !leftovers.is_empty() {
            stats.merge_cycles += 1;
            let take = self.threshold.min(leftovers.len());
            out.extend(leftovers.drain(..take));
            stats.groups += 1;
        }

        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tbstc_matrix::rng::MatrixRng;
    use tbstc_sparsity::{TbsConfig, TbsPattern};

    use crate::ddc::Ddc;

    fn independent_blocks(seed: u64, target: f64) -> Vec<DdcBlock> {
        let w = MatrixRng::seed_from(seed).block_structured_weights(64, 64, 8);
        let p = TbsPattern::sparsify(&w, target, &TbsConfig::paper_default());
        let pruned = p.mask().apply(&w);
        Ddc::encode(&pruned, &p)
            .blocks()
            .iter()
            .filter(|b| b.dim == SparsityDim::Independent)
            .cloned()
            .collect()
    }

    #[test]
    fn reduction_blocks_pass_through() {
        let b = DdcBlock {
            block_row: 0,
            block_col: 0,
            dim: SparsityDim::Reduction,
            n: 2,
            offset: 0,
            elements: vec![
                DdcElement {
                    lane: 0,
                    idx: 1,
                    value: 1.0,
                },
                DdcElement {
                    lane: 0,
                    idx: 3,
                    value: 2.0,
                },
            ],
        };
        let codec = CodecUnit::paper_default();
        let (out, stats) = codec.convert_block(&b);
        assert_eq!(out, b.elements);
        assert_eq!(stats.total_cycles(), 0);
    }

    #[test]
    fn conversion_is_a_permutation() {
        let codec = CodecUnit::paper_default();
        for b in independent_blocks(1, 0.5) {
            let (out, _) = codec.convert_block(&b);
            assert_eq!(out.len(), b.elements.len());
            let mut expect: Vec<_> = b.elements.iter().map(|e| (e.lane, e.idx)).collect();
            let mut got: Vec<_> = out.iter().map(|e| (e.lane, e.idx)).collect();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn paper_example_fig9c() {
        // Fig. 9(c): a 2:4 independent-dim block with 6 elements whose rows
        // (Rid) arrive interleaved column by column. The codec emits full
        // row groups as soon as a queue fills and merges the rest at the
        // end.
        let elements: Vec<DdcElement> = [
            // column-major storage: (lane=col, idx=row)
            (0usize, 0usize),
            (0, 2),
            (1, 0),
            (1, 1),
            (2, 1),
            (2, 3),
            (3, 2),
            (3, 3),
        ]
        .iter()
        .enumerate()
        .map(|(i, &(lane, idx))| DdcElement {
            lane,
            idx,
            value: i as f32,
        })
        .collect();
        let block = DdcBlock {
            block_row: 0,
            block_col: 0,
            dim: SparsityDim::Independent,
            n: 2,
            offset: 0,
            elements,
        };
        let codec = CodecUnit::new(2, 2, 4);
        let (out, stats) = codec.convert_block(&block);
        assert_eq!(out.len(), 8);
        // 8 elements at 2/cycle = 4 ingest cycles; merger drains what's
        // left in at most a couple more.
        assert_eq!(stats.ingest_cycles, 4);
        assert!(stats.merge_cycles <= 2, "merge {}", stats.merge_cycles);
        // Every emitted pair that came from a threshold pop shares one Rid.
        // (Just verify the first group: Fig. 9's "s&t".)
        assert_eq!(out[0].idx, out[1].idx);
    }

    #[test]
    fn cycles_scale_with_nnz() {
        let codec = CodecUnit::paper_default();
        for b in independent_blocks(2, 0.5) {
            let (_, stats) = codec.convert_block(&b);
            let nnz = b.elements.len() as u64;
            assert!(stats.ingest_cycles == nnz.div_ceil(2));
            // Merger is a small tail, not proportional to nnz.
            assert!(stats.merge_cycles <= 8, "merge {}", stats.merge_cycles);
        }
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = CodecStats {
            ingest_cycles: 2,
            merge_cycles: 1,
            peak_occupancy: 3,
            groups: 2,
        };
        a.merge(&CodecStats {
            ingest_cycles: 5,
            merge_cycles: 0,
            peak_occupancy: 7,
            groups: 4,
        });
        assert_eq!(a.ingest_cycles, 7);
        assert_eq!(a.peak_occupancy, 7);
        assert_eq!(a.groups, 6);
    }

    #[test]
    #[should_panic(expected = "codec params positive")]
    fn zero_width_rejected() {
        let _ = CodecUnit::new(0, 2, 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn conversion_never_loses_elements(seed in 0u64..30, t in 30u32..90) {
            let codec = CodecUnit::paper_default();
            for b in independent_blocks(seed, f64::from(t) / 100.0) {
                let (out, _) = codec.convert_block(&b);
                prop_assert_eq!(out.len(), b.elements.len());
            }
        }
    }
}
