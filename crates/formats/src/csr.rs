//! Compressed sparse row (CSR) — paper Fig. 7(b).
//!
//! CSR stores only the non-zero values with row pointers and column
//! indices: minimal redundancy. The cost appears at *consumption* time: a
//! block-oriented PE array works on `M`-row × `M`-column blocks, but a
//! block's elements live in `M` separate row segments at unrelated
//! offsets, so the consumer issues many small scattered reads (the paper
//! measures <38.2 % bandwidth utilization on TBS matrices).

use tbstc_matrix::Matrix;

use crate::access::{AccessTrace, MemRequest};
use crate::{INDEX_BYTES, VALUE_BYTES};

/// Per-element index bytes in CSR (full column indices need 2 bytes,
/// unlike intra-tile positions).
const CSR_INDEX_BYTES: u64 = 2 * INDEX_BYTES;
/// Row-pointer entry size.
const ROW_PTR_BYTES: u64 = 4;

/// A matrix in compressed-sparse-row format.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::Matrix;
/// use tbstc_formats::Csr;
///
/// let w = Matrix::from_rows(&[vec![0.0, 7.0], vec![5.0, 0.0]]).unwrap();
/// let csr = Csr::encode(&w);
/// assert_eq!(csr.decode(), w);
/// assert_eq!(csr.nnz(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u16>,
    values: Vec<f32>,
}

impl Csr {
    /// Encodes a (sparse) matrix.
    pub fn encode(w: &Matrix) -> Self {
        let (rows, cols) = w.shape();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for r in 0..rows {
            for c in 0..cols {
                let v = w[(r, c)];
                if v != 0.0 {
                    col_idx.push(c as u16);
                    values.push(v);
                }
            }
            row_ptr.push(values.len());
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Reconstructs the dense matrix.
    pub fn decode(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for i in self.row_ptr[r]..self.row_ptr[r + 1] {
                out[(r, self.col_idx[i] as usize)] = self.values[i];
            }
        }
        out
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Non-zeros in row `r`.
    ///
    /// # Panics
    ///
    /// Panics when `r >= self.rows`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Total stored bytes: row pointers + column indices + values.
    pub fn stored_bytes(&self) -> u64 {
        (self.row_ptr.len() as u64) * ROW_PTR_BYTES
            + self.nnz() as u64 * (VALUE_BYTES + CSR_INDEX_BYTES)
    }

    /// The consumption access trace for a block-oriented consumer that
    /// walks `block_cols`-wide column ranges of `block_rows` rows at a
    /// time.
    ///
    /// For each block the consumer must visit each member row's segment and
    /// read the slice overlapping the block's column range — `block_rows`
    /// small reads at scattered offsets per block. This is the
    /// non-contiguous behaviour of Fig. 7(b).
    ///
    /// # Panics
    ///
    /// Panics when either block dimension is zero.
    pub fn block_access_trace(&self, block_rows: usize, block_cols: usize) -> AccessTrace {
        assert!(
            block_rows > 0 && block_cols > 0,
            "block dims must be positive"
        );
        let elem = VALUE_BYTES + CSR_INDEX_BYTES;
        let mut trace = AccessTrace::new();
        for br in (0..self.rows).step_by(block_rows) {
            for bc in (0..self.cols).step_by(block_cols) {
                for r in br..(br + block_rows).min(self.rows) {
                    // Locate the sub-segment of row r within [bc, bc+block_cols).
                    let (start, end) = (self.row_ptr[r], self.row_ptr[r + 1]);
                    let lo =
                        self.col_idx[start..end].partition_point(|&c| (c as usize) < bc) + start;
                    let hi = self.col_idx[start..end]
                        .partition_point(|&c| (c as usize) < bc + block_cols)
                        + start;
                    if hi > lo {
                        trace.push(MemRequest {
                            addr: lo as u64 * elem,
                            bytes: (hi - lo) as u64 * elem,
                        });
                    }
                }
            }
        }
        trace
    }

    /// The streaming access trace: rows in order, which *is* contiguous —
    /// but only usable by a row-streaming consumer, not the block-parallel
    /// PE array.
    pub fn streaming_trace(&self) -> AccessTrace {
        let elem = VALUE_BYTES + CSR_INDEX_BYTES;
        let mut trace = AccessTrace::new();
        for r in 0..self.rows {
            let n = self.row_nnz(r);
            if n > 0 {
                trace.push(MemRequest {
                    addr: self.row_ptr[r] as u64 * elem,
                    bytes: n as u64 * elem,
                });
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tbstc_matrix::rng::MatrixRng;

    #[test]
    fn round_trip_sparse() {
        let w = MatrixRng::seed_from(1).sparse_gaussian(16, 16, 0.8, 1.0);
        assert_eq!(Csr::encode(&w).decode(), w);
    }

    #[test]
    fn round_trip_all_zero() {
        let w = Matrix::zeros(4, 6);
        let csr = Csr::encode(&w);
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.decode(), w);
    }

    #[test]
    fn row_nnz_counts() {
        let w = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 1.0]]).unwrap();
        let csr = Csr::encode(&w);
        assert_eq!(csr.row_nnz(0), 2);
        assert_eq!(csr.row_nnz(1), 1);
    }

    #[test]
    fn storage_is_minimal() {
        // CSR bytes scale with nnz, not with padding (contrast SDC).
        let w = Matrix::from_fn(8, 8, |r, _| if r == 0 { 1.0 } else { 0.0 });
        let csr = Csr::encode(&w);
        let sdc = crate::sdc::Sdc::encode(&w);
        assert!(csr.stored_bytes() < sdc.stored_bytes());
    }

    #[test]
    fn block_trace_is_scattered_on_tbs_like_data() {
        // A matrix with mixed row populations: the blocked consumer's reads
        // jump between row segments -> low contiguity.
        let w = MatrixRng::seed_from(2).sparse_gaussian(32, 32, 0.6, 1.0);
        let trace = Csr::encode(&w).block_access_trace(8, 8);
        assert!(
            trace.contiguity() < 0.3,
            "blocked CSR reads should be scattered, got {}",
            trace.contiguity()
        );
    }

    #[test]
    fn streaming_trace_is_contiguous() {
        let w = MatrixRng::seed_from(3).sparse_gaussian(16, 16, 0.5, 1.0);
        let trace = Csr::encode(&w).streaming_trace();
        assert_eq!(trace.contiguity(), 1.0);
    }

    #[test]
    fn block_trace_covers_exactly_nnz_bytes() {
        let w = MatrixRng::seed_from(4).sparse_gaussian(24, 24, 0.7, 1.0);
        let csr = Csr::encode(&w);
        let elem = VALUE_BYTES + CSR_INDEX_BYTES;
        assert_eq!(
            csr.block_access_trace(8, 8).total_bytes(),
            csr.nnz() as u64 * elem
        );
    }

    proptest! {
        #[test]
        fn round_trip_any_sparsity(seed in 0u64..200, sp in 0u32..=100) {
            let w = MatrixRng::seed_from(seed)
                .sparse_gaussian(10, 14, f64::from(sp) / 100.0, 1.0);
            prop_assert_eq!(Csr::encode(&w).decode(), w);
        }

        #[test]
        fn block_trace_bytes_independent_of_block_size(
            seed in 0u64..50, bs in 1usize..16
        ) {
            let w = MatrixRng::seed_from(seed).sparse_gaussian(16, 16, 0.5, 1.0);
            let csr = Csr::encode(&w);
            let a = csr.block_access_trace(bs, bs).total_bytes();
            let b = csr.block_access_trace(16, 16).total_bytes();
            prop_assert_eq!(a, b);
        }
    }
}
