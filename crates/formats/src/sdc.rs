//! Single-dimensional compression (SDC) — paper Fig. 7(a).
//!
//! SDC compresses every row to the length of the *longest* row, padding
//! shorter rows with invalid (zero) elements so that all rows have the same
//! stride and memory access stays perfectly regular. On one-dimensional
//! N:M patterns with a fixed N this is free; on TBS, where per-row
//! populations vary widely, the padding becomes redundant traffic (the
//! paper measures >61.5 % redundancy).

use tbstc_matrix::Matrix;

use crate::access::{AccessTrace, MemRequest};
use crate::{INDEX_BYTES, VALUE_BYTES};

/// A matrix stored in single-dimensional (max-row-aligned) compression.
///
/// # Examples
///
/// ```
/// use tbstc_matrix::Matrix;
/// use tbstc_formats::Sdc;
///
/// let w = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 3.0, 0.0]]).unwrap();
/// let sdc = Sdc::encode(&w);
/// assert_eq!(sdc.decode(), w);
/// assert_eq!(sdc.row_stride(), 2); // longest row has 2 non-zeros
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sdc {
    rows: usize,
    cols: usize,
    /// Padded non-zeros per row (max over rows).
    stride: usize,
    /// `rows × stride` values, zero-padded.
    values: Vec<f32>,
    /// `rows × stride` column indices (padding slots repeat the last valid
    /// index, matching hardware that replays a harmless lane).
    indices: Vec<u16>,
    /// Actual non-zero count (for redundancy accounting).
    nnz: usize,
}

impl Sdc {
    /// Encodes a (sparse) matrix.
    pub fn encode(w: &Matrix) -> Self {
        let (rows, cols) = w.shape();
        let per_row: Vec<Vec<(usize, f32)>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .filter_map(|c| {
                        let v = w[(r, c)];
                        (v != 0.0).then_some((c, v))
                    })
                    .collect()
            })
            .collect();
        let stride = per_row.iter().map(Vec::len).max().unwrap_or(0);
        let nnz = per_row.iter().map(Vec::len).sum();
        let mut values = Vec::with_capacity(rows * stride);
        let mut indices = Vec::with_capacity(rows * stride);
        for row in &per_row {
            for &(c, v) in row {
                values.push(v);
                indices.push(c as u16);
            }
            let pad_idx = row.last().map_or(0, |&(c, _)| c as u16);
            for _ in row.len()..stride {
                values.push(0.0);
                indices.push(pad_idx);
            }
        }
        Sdc {
            rows,
            cols,
            stride,
            values,
            indices,
            nnz,
        }
    }

    /// Reconstructs the dense matrix.
    pub fn decode(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for s in 0..self.stride {
                let v = self.values[r * self.stride + s];
                if v != 0.0 {
                    let c = self.indices[r * self.stride + s] as usize;
                    out[(r, c)] = v;
                }
            }
        }
        out
    }

    /// The padded per-row element count.
    pub fn row_stride(&self) -> usize {
        self.stride
    }

    /// Stored non-padding non-zeros.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Total stored bytes: padded values + padded indices.
    pub fn stored_bytes(&self) -> u64 {
        (self.rows * self.stride) as u64 * (VALUE_BYTES + INDEX_BYTES)
    }

    /// Bytes that are pure padding (the redundant traffic of Fig. 7(a)).
    pub fn padding_bytes(&self) -> u64 {
        ((self.rows * self.stride) as u64 - self.nnz as u64) * (VALUE_BYTES + INDEX_BYTES)
    }

    /// Fraction of stored bytes that are padding.
    pub fn redundancy(&self) -> f64 {
        let total = self.stored_bytes();
        if total == 0 {
            0.0
        } else {
            self.padding_bytes() as f64 / total as f64
        }
    }

    /// The consumption access trace: one request per row, perfectly
    /// sequential (rows are stored back to back at a fixed stride).
    pub fn access_trace(&self) -> AccessTrace {
        let row_bytes = self.stride as u64 * (VALUE_BYTES + INDEX_BYTES);
        (0..self.rows as u64)
            .map(|r| MemRequest {
                addr: r * row_bytes,
                bytes: row_bytes,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use tbstc_matrix::rng::MatrixRng;

    #[test]
    fn round_trip_dense() {
        let w = MatrixRng::seed_from(1).uniform(5, 7, 0.5, 1.0);
        assert_eq!(Sdc::encode(&w).decode(), w);
    }

    #[test]
    fn round_trip_sparse() {
        let w = MatrixRng::seed_from(2).sparse_gaussian(16, 16, 0.7, 1.0);
        assert_eq!(Sdc::encode(&w).decode(), w);
    }

    #[test]
    fn round_trip_empty_matrix() {
        let w = Matrix::zeros(4, 4);
        let sdc = Sdc::encode(&w);
        assert_eq!(sdc.decode(), w);
        assert_eq!(sdc.row_stride(), 0);
        assert_eq!(sdc.stored_bytes(), 0);
    }

    #[test]
    fn stride_is_max_row_population() {
        let w = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0], vec![5.0, 0.0, 0.0, 0.0]]).unwrap();
        let sdc = Sdc::encode(&w);
        assert_eq!(sdc.row_stride(), 4);
        assert_eq!(sdc.nnz(), 5);
        // 3 padded slots out of 8.
        assert!((sdc.redundancy() - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_rows_have_no_redundancy() {
        // One-dimensional N:M with fixed N pads nothing — SDC's home turf.
        let w = Matrix::from_fn(8, 8, |_, c| if c < 4 { 1.0 } else { 0.0 });
        assert_eq!(Sdc::encode(&w).redundancy(), 0.0);
    }

    #[test]
    fn imbalanced_rows_are_redundant() {
        // TBS-like imbalance: one dense row forces heavy padding.
        let w = Matrix::from_fn(8, 8, |r, _| if r == 0 { 1.0 } else { 0.0 });
        let mut w = w;
        w[(1, 0)] = 1.0;
        let sdc = Sdc::encode(&w);
        assert!(sdc.redundancy() > 0.6, "{}", sdc.redundancy());
    }

    #[test]
    fn trace_is_fully_contiguous() {
        let w = MatrixRng::seed_from(3).sparse_gaussian(32, 32, 0.5, 1.0);
        let trace = Sdc::encode(&w).access_trace();
        assert_eq!(trace.contiguity(), 1.0);
    }

    #[test]
    fn trace_bytes_match_storage() {
        let w = MatrixRng::seed_from(4).sparse_gaussian(16, 64, 0.8, 1.0);
        let sdc = Sdc::encode(&w);
        assert_eq!(sdc.access_trace().total_bytes(), sdc.stored_bytes());
    }

    proptest! {
        #[test]
        fn round_trip_any_sparsity(seed in 0u64..200, sp in 0u32..=100) {
            let w = MatrixRng::seed_from(seed)
                .sparse_gaussian(12, 12, f64::from(sp) / 100.0, 1.0);
            prop_assert_eq!(Sdc::encode(&w).decode(), w);
        }
    }
}
