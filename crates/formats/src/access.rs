//! Memory-access traces: the interface between storage formats and the
//! DRAM model.
//!
//! A format does not just have a size — it has an *access pattern*: the
//! sequence of byte ranges a block-oriented consumer (the PE array walking
//! the matrix block by block) requests from memory. Contiguity of that
//! sequence is what determines DRAM row-buffer hit rate and therefore
//! effective bandwidth (paper challenge 2).

/// One memory read request issued by the consumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Start byte address (relative to the tensor's base).
    pub addr: u64,
    /// Request length in bytes.
    pub bytes: u64,
}

impl MemRequest {
    /// First byte after the request.
    pub fn end(&self) -> u64 {
        self.addr + self.bytes
    }
}

/// An ordered sequence of read requests with summary statistics.
///
/// # Examples
///
/// ```
/// use tbstc_formats::{AccessTrace, MemRequest};
///
/// let mut t = AccessTrace::new();
/// t.push(MemRequest { addr: 0, bytes: 64 });
/// t.push(MemRequest { addr: 64, bytes: 64 });  // contiguous
/// t.push(MemRequest { addr: 4096, bytes: 32 }); // jump
/// assert_eq!(t.total_bytes(), 160);
/// assert!((t.contiguity() - 0.5).abs() < 1e-12); // 1 of 2 transitions
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessTrace {
    requests: Vec<MemRequest>,
}

impl AccessTrace {
    /// An empty trace.
    pub fn new() -> Self {
        AccessTrace::default()
    }

    /// Appends a request.
    pub fn push(&mut self, req: MemRequest) {
        self.requests.push(req);
    }

    /// The requests in issue order.
    pub fn requests(&self) -> &[MemRequest] {
        &self.requests
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Total bytes requested (including any format padding).
    pub fn total_bytes(&self) -> u64 {
        self.requests.iter().map(|r| r.bytes).sum()
    }

    /// Fraction of request *transitions* that are sequential (each request
    /// starting exactly where the previous one ended). 1.0 = perfectly
    /// streaming, 0.0 = every request jumps.
    ///
    /// Returns 1.0 for traces with fewer than two requests.
    pub fn contiguity(&self) -> f64 {
        if self.requests.len() < 2 {
            return 1.0;
        }
        let seq = self
            .requests
            .windows(2)
            .filter(|w| w[1].addr == w[0].end())
            .count();
        seq as f64 / (self.requests.len() - 1) as f64
    }

    /// Mean request size in bytes (0 for an empty trace).
    pub fn mean_request_bytes(&self) -> f64 {
        if self.requests.is_empty() {
            0.0
        } else {
            self.total_bytes() as f64 / self.requests.len() as f64
        }
    }

    /// Concatenates another trace after this one, rebasing its addresses by
    /// `offset`.
    pub fn extend_rebased(&mut self, other: &AccessTrace, offset: u64) {
        for r in other.requests() {
            self.push(MemRequest {
                addr: r.addr + offset,
                bytes: r.bytes,
            });
        }
    }
}

impl FromIterator<MemRequest> for AccessTrace {
    fn from_iter<I: IntoIterator<Item = MemRequest>>(iter: I) -> Self {
        AccessTrace {
            requests: iter.into_iter().collect(),
        }
    }
}

impl Extend<MemRequest> for AccessTrace {
    fn extend<I: IntoIterator<Item = MemRequest>>(&mut self, iter: I) {
        self.requests.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_trace_is_trivially_contiguous() {
        let t = AccessTrace::new();
        assert!(t.is_empty());
        assert_eq!(t.contiguity(), 1.0);
        assert_eq!(t.mean_request_bytes(), 0.0);
    }

    #[test]
    fn fully_sequential_trace() {
        let t: AccessTrace = (0..10)
            .map(|i| MemRequest {
                addr: i * 128,
                bytes: 128,
            })
            .collect();
        assert_eq!(t.contiguity(), 1.0);
        assert_eq!(t.total_bytes(), 1280);
        assert_eq!(t.mean_request_bytes(), 128.0);
    }

    #[test]
    fn scattered_trace() {
        let t: AccessTrace = (0..10)
            .map(|i| MemRequest {
                addr: i * 4096,
                bytes: 16,
            })
            .collect();
        assert_eq!(t.contiguity(), 0.0);
    }

    #[test]
    fn extend_rebased_shifts_addresses() {
        let mut a = AccessTrace::new();
        a.push(MemRequest { addr: 0, bytes: 8 });
        let mut b = AccessTrace::new();
        b.push(MemRequest { addr: 0, bytes: 8 });
        a.extend_rebased(&b, 8);
        assert_eq!(a.contiguity(), 1.0);
        assert_eq!(a.requests()[1].addr, 8);
    }

    #[test]
    fn extend_trait_appends() {
        let mut a = AccessTrace::new();
        a.extend([
            MemRequest { addr: 0, bytes: 4 },
            MemRequest { addr: 4, bytes: 4 },
        ]);
        assert_eq!(a.len(), 2);
    }
}
