//! Property tests for the storage codecs at the sparsity extremes.
//!
//! The in-module proptests sweep the interior of the sparsity range;
//! these pin the two boundary regimes the job service can be asked for
//! directly (`sparsity: 0.0` and `sparsity: 1.0`):
//!
//! * **fully dense** — every value nonzero, so index structures carry no
//!   information and padding paths in SDC are never taken;
//! * **fully zero** — no values at all, the degenerate case where
//!   offsets, row pointers, and block info must still be self-consistent.

use proptest::prelude::*;

use tbstc_formats::{Csr, Ddc, Sdc};
use tbstc_matrix::Matrix;
use tbstc_sparsity::{TbsConfig, TbsPattern};

/// A matrix with every entry nonzero (values in ±[0.5, 1.5]).
fn fully_dense(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        // xorshift64*: cheap, deterministic, and never maps to zero below.
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let u = (state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 40) as f32 / (1 << 24) as f32;
        let magnitude = 0.5 + u; // in [0.5, 1.5]
        if state & 1 == 0 {
            magnitude
        } else {
            -magnitude
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fully_dense_round_trips(seed in 0u64..100, rows in 8usize..40, cols in 8usize..40) {
        let w = fully_dense(rows, cols, seed);
        prop_assert_eq!(w.count_zeros(), 0, "generator must not emit zeros");

        // DDC stores what the pattern keeps; at target 0.0 the sparsifier
        // keeps as much as the block grid allows, so encode the masked
        // matrix (the codec's actual contract) and require it near-dense.
        let pattern = TbsPattern::sparsify(&w, 0.0, &TbsConfig::paper_default());
        let kept = pattern.mask().apply(&w);
        let ddc = Ddc::encode(&kept, &pattern);
        prop_assert_eq!(ddc.decode(), kept);

        let sdc = Sdc::encode(&w);
        prop_assert_eq!(sdc.decode(), w.clone());

        let csr = Csr::encode(&w);
        prop_assert_eq!(csr.decode(), w);
    }

    #[test]
    fn fully_zero_round_trips(rows in 1usize..40, cols in 1usize..40) {
        let w = Matrix::zeros(rows, cols);

        let pattern = TbsPattern::sparsify(&w, 1.0, &TbsConfig::paper_default());
        let ddc = Ddc::encode(&w, &pattern);
        prop_assert_eq!(ddc.decode(), w.clone());

        let sdc = Sdc::encode(&w);
        prop_assert_eq!(sdc.decode(), w.clone());

        let csr = Csr::encode(&w);
        prop_assert_eq!(csr.decode(), w.clone());
        prop_assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn sparsify_at_one_empties_any_matrix(seed in 0u64..100) {
        let w = fully_dense(24, 24, seed);
        let pattern = TbsPattern::sparsify(&w, 1.0, &TbsConfig::paper_default());
        let pruned = pattern.mask().apply(&w);
        prop_assert_eq!(pruned.count_nonzeros(), 0);
        let ddc = Ddc::encode(&pruned, &pattern);
        prop_assert_eq!(ddc.decode(), pruned);
    }
}
