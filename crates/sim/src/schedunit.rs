//! Functional model of the inter-block scheduling unit
//! (paper §VI-B1, Fig. 11(a,b)).
//!
//! The scheduling unit sits between the on-chip buffer and a PE. Each
//! cycle it can load up to two matrix blocks from the buffer, and it
//! decides what to send to the PE based on the pending blocks' occupancy:
//! low-occupancy blocks are held back and **merged** with a later block so
//! that one PE issue slot carries the combined work — converting per-block
//! ceilings into work-proportional time.
//!
//! [`SchedulingUnit::run`] replays a block stream cycle by cycle and
//! reproduces the paper's Fig. 11(b) walkthrough exactly (see the
//! `fig11b_walkthrough` test).

/// A pending matrix block, identified by its position in the input stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    id: usize,
    slots: usize,
}

/// One PE dispatch: which blocks were sent together and the cycles the PE
/// spends on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dispatch {
    /// Cycle at which the dispatch was issued.
    pub cycle: u64,
    /// Input-stream indices of the block(s) sent (merged blocks share one
    /// dispatch).
    pub blocks: Vec<usize>,
    /// PE cycles the dispatch occupies.
    pub pe_cycles: u64,
}

/// Result of running a stream through the scheduling unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleRun {
    /// The dispatches in issue order.
    pub dispatches: Vec<Dispatch>,
    /// Total cycles until the PE finished the last dispatch.
    pub total_cycles: u64,
}

impl ScheduleRun {
    /// Total PE×cycles consumed (the paper's Fig. 11(a) cost metric).
    pub fn pe_cycles(&self) -> u64 {
        self.dispatches.iter().map(|d| d.pe_cycles).sum()
    }

    /// PE utilization: useful slots over `lane_width ×` busy cycles.
    pub fn utilization(&self, useful_slots: usize, width: usize) -> f64 {
        let busy = self.pe_cycles() * width as u64;
        if busy == 0 {
            return 1.0;
        }
        useful_slots as f64 / busy as f64
    }
}

/// The two-entry sparsity-aware scheduling unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulingUnit {
    /// PE lane width (8 in the paper).
    width: usize,
    /// Buffer capacity in blocks (2 in the paper).
    capacity: usize,
}

impl SchedulingUnit {
    /// The paper's unit: width 8, two-block buffer.
    pub fn paper_default() -> Self {
        SchedulingUnit {
            width: 8,
            capacity: 2,
        }
    }

    /// A custom unit.
    ///
    /// # Panics
    ///
    /// Panics when either parameter is zero.
    pub fn new(width: usize, capacity: usize) -> Self {
        assert!(width > 0 && capacity > 0, "positive width and capacity");
        SchedulingUnit { width, capacity }
    }

    /// Runs `block_slots` (per-block MAC-slot counts, in stream order)
    /// through the scheduler feeding one PE.
    ///
    /// Per cycle: load up to two stream blocks into the buffer (capacity
    /// permitting), then dispatch — preferring to merge buffered blocks
    /// whose combined slots fit one PE slot-width multiple better than
    /// dispatching them separately.
    pub fn run(&self, block_slots: &[usize]) -> ScheduleRun {
        let mut stream = block_slots
            .iter()
            .copied()
            .enumerate()
            .map(|(id, slots)| Pending { id, slots })
            .collect::<std::collections::VecDeque<_>>();
        let mut buffer: Vec<Pending> = Vec::new();
        let mut dispatches = Vec::new();
        let mut cycle: u64 = 0;
        let mut pe_busy_until: u64 = 0;

        while !stream.is_empty() || !buffer.is_empty() {
            // Load phase: up to two blocks per cycle into the buffer.
            for _ in 0..2 {
                if buffer.len() < self.capacity {
                    if let Some(p) = stream.pop_front() {
                        buffer.push(p);
                    }
                }
            }

            // Dispatch phase: only when the PE is free this cycle.
            if cycle >= pe_busy_until && !buffer.is_empty() {
                // The paper's policy (Fig. 11(b)): send lane-filling
                // blocks straight to the PE and *hold back* underfilled
                // blocks, hoping to merge them with a later one. Merge and
                // flush the held blocks once the buffer is full or the
                // stream has ended.
                let full = buffer.iter().position(|p| p.slots >= self.width);
                let take: Vec<Pending> = if let Some(i) = full {
                    vec![buffer.remove(i)]
                } else if buffer.len() >= self.capacity || stream.is_empty() {
                    std::mem::take(&mut buffer)
                } else {
                    Vec::new() // wait for a merge partner
                };
                if !take.is_empty() {
                    let slots: usize = take.iter().map(|p| p.slots).sum();
                    let pe_cycles = (slots.div_ceil(self.width)).max(1) as u64;
                    dispatches.push(Dispatch {
                        cycle,
                        blocks: take.iter().map(|p| p.id).collect(),
                        pe_cycles,
                    });
                    pe_busy_until = cycle + pe_cycles;
                }
            }
            cycle += 1;
            // Safety: the loop must always make progress.
            debug_assert!(cycle < 1_000_000, "scheduler livelock");
        }

        ScheduleRun {
            dispatches,
            total_cycles: pe_busy_until,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11b_walkthrough() {
        // Paper Fig. 11(a,b): five blocks a..e; direct mapping needs
        // 10 PE×cycles at 50% utilization, the scheduling unit needs 5.
        // Block occupancies (slots of a width-8 PE): a=4, b=16, c=8, d=4,
        // e=8 — blocks a and d merge into one full slot.
        let slots = [4usize, 16, 8, 4, 8];
        let unit = SchedulingUnit::paper_default();
        let run = unit.run(&slots);
        assert_eq!(run.pe_cycles(), 5, "paper: 5 PE×cycles");
        // a and d are merged into a single dispatch.
        let merged = run
            .dispatches
            .iter()
            .find(|d| d.blocks.len() == 2)
            .expect("a merge happened");
        assert!(merged.blocks.contains(&0) && merged.blocks.contains(&3));
        // Direct mapping: each block pads to whole cycles.
        let direct: u64 = slots.iter().map(|&s| s.div_ceil(8).max(1) as u64).sum();
        assert_eq!(direct, 6);
        let useful: usize = slots.iter().sum();
        assert!(run.utilization(useful, 8) > direct as f64 / 10.0);
    }

    #[test]
    fn merge_never_increases_pe_cycles() {
        let unit = SchedulingUnit::paper_default();
        for slots in [
            vec![1usize; 16],
            vec![8; 4],
            vec![3, 5, 7, 9, 2, 6],
            vec![64, 1, 1, 1, 1, 1, 1, 1, 1],
        ] {
            let run = unit.run(&slots);
            let direct: u64 = slots.iter().map(|&s| s.div_ceil(8).max(1) as u64).sum();
            assert!(
                run.pe_cycles() <= direct,
                "{slots:?}: scheduled {} vs direct {direct}",
                run.pe_cycles()
            );
        }
    }

    #[test]
    fn every_block_dispatched_exactly_once() {
        let slots = vec![5usize, 3, 9, 0, 12, 7, 2];
        let run = SchedulingUnit::paper_default().run(&slots);
        let mut seen: Vec<usize> = run
            .dispatches
            .iter()
            .flat_map(|d| d.blocks.clone())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..slots.len()).collect::<Vec<_>>());
    }

    #[test]
    fn utilization_approaches_one_on_mergeable_streams() {
        // Half-filled blocks: pairs merge into full lanes.
        let slots = vec![4usize; 64]; // 256 slots = 32 full PE cycles
        let run = SchedulingUnit::paper_default().run(&slots);
        let util = run.utilization(256, 8);
        assert!(util > 0.95, "utilization {util}");
    }

    #[test]
    fn buffer_capacity_bounds_merging() {
        // 2-slot blocks with a two-entry buffer merge at most pairwise:
        // utilization caps at 4/8.
        let slots = vec![2usize; 32];
        let run = SchedulingUnit::paper_default().run(&slots);
        let util = run.utilization(64, 8);
        assert!((util - 0.5).abs() < 0.05, "utilization {util}");
        // A deeper buffer merges further.
        let deep = SchedulingUnit::new(8, 4).run(&slots);
        assert!(deep.utilization(64, 8) > util, "deeper buffer helps");
    }

    #[test]
    fn empty_stream() {
        let run = SchedulingUnit::paper_default().run(&[]);
        assert_eq!(run.total_cycles, 0);
        assert!(run.dispatches.is_empty());
    }

    #[test]
    fn zero_slot_blocks_still_pass_through() {
        let run = SchedulingUnit::paper_default().run(&[0, 0, 8]);
        assert_eq!(
            run.dispatches.iter().flat_map(|d| d.blocks.clone()).count(),
            3
        );
    }
}
