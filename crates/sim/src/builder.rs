//! The unified simulation-entry builder.
//!
//! [`LayerSim`] replaces the four historical `SparseLayer::build*` entry
//! points with one typed builder: start from a workload shape, set the
//! architecture (or an explicit pattern), sparsity and seed, then either
//! [`LayerSim::build`] the pruned layer or [`LayerSim::run`] the full
//! simulation in one call.
//!
//! ```
//! use tbstc_models::bert_base;
//! use tbstc_sim::{Arch, HwConfig, LayerSim};
//!
//! let cfg = HwConfig::paper_default();
//! let shape = &bert_base(128).layers[0];
//! let res = LayerSim::new(shape).arch(Arch::TbStc).sparsity(0.75).seed(42).run(&cfg);
//! assert!(res.cycles > 0);
//! ```

use tbstc_models::LayerShape;
use tbstc_sparsity::{PatternKind, TbsConfig};

use crate::arch::Arch;
use crate::config::HwConfig;
use crate::layer::SparseLayer;
use crate::pipeline::simulate_layer;
use crate::result::LayerResult;

/// A fully described single-layer simulation: shape + architecture +
/// sparsity + seed (+ optional pattern/TBS-config overrides).
///
/// The builder is cheap to clone and hashable, so it doubles as the job
/// key of the parallel experiment runner.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSim {
    shape: LayerShape,
    arch: Arch,
    pattern: Option<PatternKind>,
    sparsity: f64,
    seed: u64,
    tbs_cfg: Option<TbsConfig>,
}

impl LayerSim {
    /// Starts a simulation description for `shape`. Defaults: TB-STC, the
    /// architecture's native pattern, dense (sparsity 0), seed 0.
    pub fn new(shape: &LayerShape) -> Self {
        LayerSim {
            shape: shape.clone(),
            arch: Arch::TbStc,
            pattern: None,
            sparsity: 0.0,
            seed: 0,
            tbs_cfg: None,
        }
    }

    /// Sets the simulated architecture. Unless overridden with
    /// [`LayerSim::pattern`], the layer is pruned with the architecture's
    /// native pattern.
    pub fn arch(mut self, arch: Arch) -> Self {
        self.arch = arch;
        self
    }

    /// Overrides the pruning pattern (by default the architecture's
    /// native pattern).
    pub fn pattern(mut self, pattern: PatternKind) -> Self {
        self.pattern = Some(pattern);
        self
    }

    /// Sets the target sparsity in `[0, 1]`.
    pub fn sparsity(mut self, sparsity: f64) -> Self {
        self.sparsity = sparsity;
        self
    }

    /// Sets the weight-sampling seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Uses a custom TBS block configuration (Fig. 15(a) block-size
    /// sensitivity). Implies the TBS pattern.
    pub fn tbs_config(mut self, cfg: TbsConfig) -> Self {
        self.tbs_cfg = Some(cfg);
        self.pattern = Some(PatternKind::Tbs);
        self
    }

    /// The architecture this simulation targets.
    pub fn target_arch(&self) -> Arch {
        self.arch
    }

    /// The pattern the layer will be pruned with.
    pub fn effective_pattern(&self) -> PatternKind {
        self.pattern.unwrap_or_else(|| self.arch.native_pattern())
    }

    /// Builds the pruned [`SparseLayer`] (sampling limits from `cfg`).
    ///
    /// # Panics
    ///
    /// Panics when the sparsity is outside `[0, 1]` or a custom TBS
    /// config is invalid.
    pub fn build(&self, cfg: &HwConfig) -> SparseLayer {
        SparseLayer::assemble(
            &self.shape,
            self.effective_pattern(),
            self.sparsity,
            self.seed,
            cfg,
            self.tbs_cfg.as_ref(),
        )
    }

    /// Builds the layer and simulates it on the configured architecture.
    ///
    /// # Panics
    ///
    /// Panics when the sparsity is outside `[0, 1]` or a custom TBS
    /// config is invalid.
    pub fn run(&self, cfg: &HwConfig) -> LayerResult {
        simulate_layer(self.arch, &self.build(cfg), cfg)
    }
}

impl std::hash::Hash for LayerSim {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.shape.hash(state);
        self.arch.hash(state);
        self.pattern.hash(state);
        self.sparsity.to_bits().hash(state);
        self.seed.hash(state);
        if let Some(t) = &self.tbs_cfg {
            t.m.hash(state);
            t.n_candidates.hash(state);
        }
    }
}

impl Eq for LayerSim {}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc_models::bert_base;

    fn shape() -> LayerShape {
        bert_base(128).layers[0].clone()
    }

    #[test]
    fn builder_matches_legacy_build() {
        let cfg = HwConfig::paper_default();
        #[allow(deprecated)]
        let legacy = SparseLayer::build_for_arch(&shape(), Arch::TbStc, 0.75, 7, &cfg);
        let new = LayerSim::new(&shape())
            .arch(Arch::TbStc)
            .sparsity(0.75)
            .seed(7)
            .build(&cfg);
        assert_eq!(legacy.sampled(), new.sampled());
        assert_eq!(legacy.pattern, new.pattern);
    }

    #[test]
    fn pattern_override_beats_arch_default() {
        let cfg = HwConfig::paper_default();
        let l = LayerSim::new(&shape())
            .arch(Arch::TbStc)
            .pattern(PatternKind::Unstructured)
            .sparsity(0.5)
            .build(&cfg);
        assert_eq!(l.pattern, PatternKind::Unstructured);
        assert!(l.tbs().is_none());
    }

    #[test]
    fn run_produces_cycles() {
        let cfg = HwConfig::paper_default();
        let res = LayerSim::new(&shape())
            .arch(Arch::Stc)
            .sparsity(0.75)
            .seed(1)
            .run(&cfg);
        assert_eq!(res.arch, Arch::Stc);
        assert!(res.cycles > 0);
    }

    #[test]
    fn tbs_config_implies_tbs_pattern() {
        let cfg = HwConfig::paper_default();
        let sim = LayerSim::new(&shape())
            .arch(Arch::TbStc)
            .sparsity(0.75)
            .tbs_config(TbsConfig::with_block_size(16));
        assert_eq!(sim.effective_pattern(), PatternKind::Tbs);
        let l = sim.build(&cfg);
        assert!(l.tbs().is_some());
        assert_eq!(l.tbs().unwrap().config().m, 16);
    }

    #[test]
    fn builder_is_a_usable_hash_key() {
        use std::collections::HashSet;
        let a = LayerSim::new(&shape())
            .arch(Arch::TbStc)
            .sparsity(0.5)
            .seed(1);
        let b = LayerSim::new(&shape())
            .arch(Arch::TbStc)
            .sparsity(0.5)
            .seed(1);
        let c = LayerSim::new(&shape())
            .arch(Arch::TbStc)
            .sparsity(0.75)
            .seed(1);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }
}
