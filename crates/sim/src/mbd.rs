//! Functional model of the Matrix-B Distribution (MBD) unit
//! (paper §VI-A2, Fig. 10(b)).
//!
//! The MBD unit feeds the DVPEs the B-matrix operands matching the sparse
//! indices of A. It supports both row-major and column-major B tiles via
//! a configurable pipeline of a **MUX array** (16 8-to-1 multiplexers
//! selecting B elements under A's indices) and a **transpose array**
//! (four 8×8 register transposers), sequenced by the C0–C2 multiplexers;
//! C3 outputs the reorganized data.

use tbstc_matrix::Matrix;

/// Storage order of the incoming B tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TileOrder {
    /// Rows of B are contiguous (the natural GEMM layout).
    RowMajor,
    /// Columns of B are contiguous (produced by some producers/layouts);
    /// the transpose array runs *before* the MUX array.
    ColMajor,
}

/// Activity counters of the MBD unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MbdTrace {
    /// 8-to-1 selections performed.
    pub mux_selects: u64,
    /// 8×8 tile transposes performed.
    pub transposes: u64,
}

/// The functional MBD unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MbdUnit {
    tile: usize,
}

impl MbdUnit {
    /// The paper's configuration: 8×8 tiles (16 MUXes / 4 transposers
    /// cover two tiles per cycle; functionally one tile at a time).
    pub fn paper_default() -> Self {
        MbdUnit { tile: 8 }
    }

    /// Tile dimension.
    pub fn tile(&self) -> usize {
        self.tile
    }

    /// Selects the B operands for one output column `col` of an 8×8 B
    /// tile, given the reduction-dimension indices of A's non-zeros.
    ///
    /// `b_tile` holds the tile in the given `order` (an `8 × 8` matrix
    /// whose logical element `(k, j)` is `B[k][j]`; for
    /// [`TileOrder::ColMajor`] the stored matrix is the transpose and the
    /// transpose array restores it first — C0/C1/C2 route accordingly).
    ///
    /// Returns one selected `B[k][col]` per index, plus the trace.
    ///
    /// # Panics
    ///
    /// Panics when the tile is not `8 × 8`, `col` is out of range, or an
    /// index exceeds the tile.
    pub fn select(
        &self,
        b_tile: &Matrix,
        order: TileOrder,
        indices: &[usize],
        col: usize,
    ) -> (Vec<f32>, MbdTrace) {
        assert_eq!(
            b_tile.shape(),
            (self.tile, self.tile),
            "MBD operates on {0}x{0} tiles",
            self.tile
        );
        assert!(col < self.tile, "column {col} out of tile range");
        let mut trace = MbdTrace::default();

        // C0/C1: the transpose array restores logical (k, j) orientation
        // for column-major tiles before the MUX array runs.
        let logical = match order {
            TileOrder::RowMajor => b_tile.clone(),
            TileOrder::ColMajor => {
                trace.transposes += 1;
                b_tile.transpose()
            }
        };

        // The MUX array: one 8-to-1 selection per sparse index.
        let selected = indices
            .iter()
            .map(|&k| {
                assert!(k < self.tile, "index {k} exceeds tile");
                trace.mux_selects += 1;
                logical[(k, col)]
            })
            .collect();
        (selected, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc_matrix::rng::MatrixRng;

    fn tile(seed: u64) -> Matrix {
        MatrixRng::seed_from(seed).uniform(8, 8, -1.0, 1.0)
    }

    #[test]
    fn row_major_selection_matches_direct_indexing() {
        let b = tile(1);
        let mbd = MbdUnit::paper_default();
        let idx = [0usize, 3, 5, 7];
        let (sel, trace) = mbd.select(&b, TileOrder::RowMajor, &idx, 2);
        let expect: Vec<f32> = idx.iter().map(|&k| b[(k, 2)]).collect();
        assert_eq!(sel, expect);
        assert_eq!(trace.mux_selects, 4);
        assert_eq!(trace.transposes, 0);
    }

    #[test]
    fn col_major_selection_goes_through_transpose_array() {
        let b = tile(2);
        let stored = b.transpose(); // column-major storage of the same tile
        let mbd = MbdUnit::paper_default();
        let idx = [1usize, 2, 6];
        let (row_sel, _) = mbd.select(&b, TileOrder::RowMajor, &idx, 4);
        let (col_sel, trace) = mbd.select(&stored, TileOrder::ColMajor, &idx, 4);
        assert_eq!(row_sel, col_sel, "both paths select the same operands");
        assert_eq!(trace.transposes, 1);
    }

    #[test]
    fn selection_feeds_correct_spmm_operands() {
        // End-to-end: row r of sparse A times B column j equals the dot of
        // A's non-zeros with the MBD-selected operands.
        let mut rng = MatrixRng::seed_from(3);
        let a = rng.sparse_gaussian(8, 8, 0.6, 1.0);
        let b = rng.uniform(8, 8, -1.0, 1.0);
        let mbd = MbdUnit::paper_default();
        for r in 0..8 {
            let (vals, idx): (Vec<f32>, Vec<usize>) = (0..8)
                .filter(|&c| a[(r, c)] != 0.0)
                .map(|c| (a[(r, c)], c))
                .unzip();
            for j in 0..8 {
                let (sel, _) = mbd.select(&b, TileOrder::RowMajor, &idx, j);
                let dot: f32 = vals.iter().zip(&sel).map(|(x, y)| x * y).sum();
                let golden: f32 = (0..8).map(|c| a[(r, c)] * b[(c, j)]).sum();
                assert!((dot - golden).abs() < 1e-5, "row {r} col {j}");
            }
        }
    }

    #[test]
    fn empty_index_list_selects_nothing() {
        let (sel, trace) = MbdUnit::paper_default().select(&tile(4), TileOrder::RowMajor, &[], 0);
        assert!(sel.is_empty());
        assert_eq!(trace.mux_selects, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds tile")]
    fn out_of_range_index_rejected() {
        let _ = MbdUnit::paper_default().select(&tile(5), TileOrder::RowMajor, &[8], 0);
    }

    #[test]
    #[should_panic(expected = "8x8 tiles")]
    fn wrong_tile_shape_rejected() {
        let b = Matrix::zeros(4, 8);
        let _ = MbdUnit::paper_default().select(&b, TileOrder::RowMajor, &[0], 0);
    }
}
