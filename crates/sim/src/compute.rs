//! The compute-cycle model: block walking, scheduling, utilization.
//!
//! Each architecture turns the sampled pruned weights into a list of
//! per-block [`BlockWork`] items reflecting its dataflow's structural
//! constraints, then runs them through the scheduler model. The
//! constraints live with the architectures — a [`BlockPlan`] gathers the
//! per-block occupancy columns in one pass over the sampled weights and
//! each [`crate::archs::ArchModel`] prices them in batch: TC densely, STC
//! at its 4:8 floor, VEGETA/HighLight with their one-dimensional
//! lockstep/ratio-grouping penalties, RM-STC/SGCN nnz-proportionally with
//! their efficiency factors, and TB-STC (plus the FAN ablation)
//! nnz-proportionally with hierarchical scheduling.

use crate::arch::Arch;
use crate::archs::{self, ArchModel};
use crate::config::HwConfig;
use crate::layer::SparseLayer;
use crate::plan::BlockPlan;
use crate::sched::{self, BlockWork, InterBlockPolicy, IntraBlockPolicy};

/// The compute-side result for one layer (already scaled to real size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeResult {
    /// Compute cycles of the whole layer.
    pub cycles: u64,
    /// Useful MACs (non-zero weight × activation).
    pub useful_macs: u64,
    /// Issued MAC slots (useful + structural padding).
    pub issued_macs: u64,
    /// Compute utilization: useful slots / (lanes × cycles).
    pub utilization: f64,
}

/// Scheduling knobs (for the Fig. 16(b) ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePolicy {
    /// Inter-block placement.
    pub inter: InterBlockPolicy,
    /// Intra-block lane packing.
    pub intra: IntraBlockPolicy,
}

impl SchedulePolicy {
    /// The policy an architecture ships with.
    pub fn native(arch: Arch) -> Self {
        archs::model(arch).native_schedule()
    }

    /// The non-scheduled ablation point (Fig. 16(b) "w/o scheduling").
    pub fn naive() -> Self {
        SchedulePolicy {
            inter: InterBlockPolicy::Direct,
            intra: IntraBlockPolicy::Naive,
        }
    }
}

/// Extracts the per-block work list the architecture's dataflow sees.
///
/// Convenience wrapper: builds a [`BlockPlan`] and prices it through the
/// architecture's batched pricing. Callers that already hold a plan (the
/// [`crate::pipeline`] layer) should call
/// [`crate::archs::ArchModel::block_works_batch`] directly.
pub fn block_works(arch: Arch, layer: &SparseLayer) -> Vec<BlockWork> {
    archs::model(arch).block_works_batch(&BlockPlan::build(layer))
}

/// Runs the compute model for a layer on an architecture.
///
/// Builds a fresh [`BlockPlan`]; use [`simulate_compute_with_plan`] to
/// share one plan across the compute and memory models.
pub fn simulate_compute(
    arch: Arch,
    layer: &SparseLayer,
    cfg: &HwConfig,
    policy: SchedulePolicy,
) -> ComputeResult {
    simulate_compute_with_plan(arch, layer, &BlockPlan::build(layer), cfg, policy)
}

/// Runs the compute model for a layer using a pre-built [`BlockPlan`].
pub fn simulate_compute_with_plan(
    arch: Arch,
    layer: &SparseLayer,
    plan: &BlockPlan,
    cfg: &HwConfig,
    policy: SchedulePolicy,
) -> ComputeResult {
    simulate_compute_on(archs::model(arch), layer, plan, cfg, policy)
}

/// Runs the compute model against any [`ArchModel`] — registry builtin or
/// spec-interpreted [`crate::spec::CustomArch`].
pub fn simulate_compute_on(
    model: &dyn ArchModel,
    layer: &SparseLayer,
    plan: &BlockPlan,
    cfg: &HwConfig,
    policy: SchedulePolicy,
) -> ComputeResult {
    let works = model.block_works_batch(plan);
    let lanes = model.lanes(cfg.pe);
    let width = cfg.lane_width();
    let pes = lanes / width;

    let mut sampled_cycles =
        sched::schedule_stream(&works, layer.sn, pes, width, policy.inter, policy.intra);
    sampled_cycles += model.extra_compute_cycles(&works, pes);

    let scale = layer.weight_scale() * layer.col_scale();
    let cycles = (sampled_cycles as f64 * scale).ceil() as u64;

    let useful_sampled: u64 = plan.total_nnz() as u64 * layer.sn as u64;
    let issued_sampled: u64 = works.iter().map(|w| w.slots as u64).sum::<u64>() * layer.sn as u64;
    let useful_macs = (useful_sampled as f64 * scale) as u64;
    let issued_macs = (issued_sampled as f64 * scale) as u64;

    let utilization = if cycles == 0 {
        1.0
    } else {
        (useful_macs as f64) / (cycles as f64 * lanes as f64)
    };

    ComputeResult {
        cycles,
        useful_macs,
        issued_macs,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc_models::LayerShape;

    fn shape(m: usize, k: usize, n: usize) -> LayerShape {
        LayerShape {
            name: "test".into(),
            m,
            k,
            n,
            repeats: 1,
            prunable: true,
        }
    }

    fn cfg() -> HwConfig {
        HwConfig::paper_default()
    }

    fn run(arch: Arch, target: f64) -> ComputeResult {
        let layer = crate::LayerSim::new(&shape(128, 128, 64))
            .arch(arch)
            .sparsity(target)
            .seed(11)
            .build(&cfg());
        simulate_compute(arch, &layer, &cfg(), SchedulePolicy::native(arch))
    }

    #[test]
    fn dense_tc_full_utilization() {
        let r = run(Arch::Tc, 0.0);
        assert!(r.utilization > 0.9, "{}", r.utilization);
        assert_eq!(r.useful_macs, 128 * 128 * 64);
    }

    #[test]
    fn stc_executes_half_density_regardless_of_target() {
        let lo = run(Arch::Stc, 0.5);
        let hi = run(Arch::Stc, 0.875);
        // Same cycles: the 4:8 floor.
        assert_eq!(lo.cycles, hi.cycles);
        let dense = run(Arch::Tc, 0.0);
        let ratio = dense.cycles as f64 / lo.cycles as f64;
        assert!((1.8..2.2).contains(&ratio), "STC ≈ 2x dense: {ratio}");
    }

    #[test]
    fn tb_stc_scales_with_sparsity() {
        let half = run(Arch::TbStc, 0.5);
        let deep = run(Arch::TbStc, 0.875);
        let ratio = half.cycles as f64 / deep.cycles as f64;
        assert!(ratio > 2.0, "87.5% sparsity much faster than 50%: {ratio}");
    }

    #[test]
    fn tb_stc_near_perfect_utilization() {
        let r = run(Arch::TbStc, 0.75);
        assert!(r.utilization > 0.85, "{}", r.utilization);
    }

    #[test]
    fn tb_stc_beats_lockstep_engines_at_equal_sparsity() {
        let tb = run(Arch::TbStc, 0.75);
        let veg = run(Arch::Vegeta, 0.75);
        assert!(
            veg.cycles as f64 > tb.cycles as f64 * 1.05,
            "VEGETA {} vs TB-STC {}",
            veg.cycles,
            tb.cycles
        );
        assert!(tb.utilization > veg.utilization);
    }

    #[test]
    fn rm_stc_close_to_tb_stc_in_speed() {
        // Paper: RM-STC speedup gap is only ~1.06x.
        let tb = run(Arch::TbStc, 0.75);
        let rm = run(Arch::RmStc, 0.75);
        let ratio = rm.cycles as f64 / tb.cycles as f64;
        assert!((1.0..1.25).contains(&ratio), "{ratio}");
    }

    #[test]
    fn naive_scheduling_hurts_tb_stc() {
        let layer = crate::LayerSim::new(&shape(128, 128, 64))
            .arch(Arch::TbStc)
            .sparsity(0.75)
            .seed(12)
            .build(&cfg());
        let smart = simulate_compute(
            Arch::TbStc,
            &layer,
            &cfg(),
            SchedulePolicy::native(Arch::TbStc),
        );
        let naive = simulate_compute(Arch::TbStc, &layer, &cfg(), SchedulePolicy::naive());
        let gain = naive.cycles as f64 / smart.cycles as f64;
        assert!(
            (1.3..6.0).contains(&gain),
            "scheduling gain {gain} (paper: 1.57x utilization)"
        );
    }

    #[test]
    fn utilization_never_exceeds_one() {
        for arch in Arch::MAIN_BASELINES {
            let r = run(arch, 0.6);
            assert!(r.utilization <= 1.0 + 1e-9, "{arch}: {}", r.utilization);
            assert!(r.issued_macs >= r.useful_macs, "{arch}");
        }
    }

    #[test]
    fn scaling_preserves_per_element_cost() {
        // A 4x larger layer (sampled identically) costs ~4x the cycles.
        let small = crate::LayerSim::new(&shape(128, 128, 64))
            .arch(Arch::TbStc)
            .sparsity(0.5)
            .seed(13)
            .build(&cfg());
        let big = crate::LayerSim::new(&shape(256, 256, 64))
            .arch(Arch::TbStc)
            .sparsity(0.5)
            .seed(13)
            .build(&cfg());
        let a = simulate_compute(
            Arch::TbStc,
            &small,
            &cfg(),
            SchedulePolicy::native(Arch::TbStc),
        );
        let b = simulate_compute(
            Arch::TbStc,
            &big,
            &cfg(),
            SchedulePolicy::native(Arch::TbStc),
        );
        let ratio = b.cycles as f64 / a.cycles as f64;
        assert!((3.0..5.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn fan_slower_than_dvpe() {
        let tb = run(Arch::TbStc, 0.75);
        let fan = run(Arch::DvpeFan, 0.75);
        assert!(fan.cycles >= tb.cycles);
    }

    #[test]
    fn sgcn_wasteful_at_dnn_sparsity() {
        let tb = run(Arch::TbStc, 0.6);
        let sg = run(Arch::Sgcn, 0.6);
        assert!(
            sg.cycles as f64 > tb.cycles as f64 * 1.2,
            "SGCN {} TB {}",
            sg.cycles,
            tb.cycles
        );
    }
}
