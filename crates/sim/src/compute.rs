//! Per-architecture compute-cycle models.
//!
//! Each architecture turns the sampled pruned weights into a list of
//! per-block [`BlockWork`] items reflecting its dataflow's structural
//! constraints, then runs them through the scheduler model. The
//! constraints (documented per match arm in [`block_works`]) are where the
//! baselines' compute differences come from:
//!
//! * **TC** executes every slot densely;
//! * **STC** executes at 4:8 density — the mask was already projected at
//!   50 %, so its slots equal its nnz;
//! * **VEGETA / HighLight** can pack multiple rows of the *same* ratio
//!   into one SIMD issue, but rows of different `N` need separate issues
//!   (their B-select logic is per-ratio), so a block costs
//!   `Σ_N ceil(rows_N · N / width)` issues — the row-heterogeneity
//!   penalty of one-dimensional patterns (challenge 3);
//! * **RM-STC** is nnz-proportional with a row-merge efficiency factor
//!   and stream merging (that is what "row-merge dataflow" does);
//! * **TB-STC** is nnz-proportional; its intra/inter-block scheduling
//!   (Fig. 11) recovers the imbalance, and the ablation switches it off;
//! * **SGCN** is element-granular CSR processing: nnz-proportional with a
//!   gather-efficiency factor plus a per-row frontend overhead — great at
//!   extreme sparsity, wasteful in the 30–90 % band (Fig. 15(d)).

use crate::arch::Arch;
use crate::config::HwConfig;
use crate::layer::SparseLayer;
use crate::sched::{self, BlockWork, InterBlockPolicy, IntraBlockPolicy};

/// Row-merge packing efficiency of RM-STC's unstructured dataflow
/// (merge bubbles between rows; its speedup loss vs TB-STC is small —
/// paper: 1.06×).
const RM_STC_EFFICIENCY: f64 = 0.94;
/// Extra pipeline occupancy of SIGMA's FAN (deeper forwarding network).
const FAN_OVERHEAD: f64 = 1.12;
/// SGCN's element-granular gather efficiency at DNN-range sparsity.
const SGCN_EFFICIENCY: f64 = 0.7;
/// HighLight's two-level metadata intersection overhead per element
/// cluster (hierarchical coordinate decoding on the datapath).
const HIGHLIGHT_INTERSECT_OVERHEAD: f64 = 1.06;

/// The compute-side result for one layer (already scaled to real size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeResult {
    /// Compute cycles of the whole layer.
    pub cycles: u64,
    /// Useful MACs (non-zero weight × activation).
    pub useful_macs: u64,
    /// Issued MAC slots (useful + structural padding).
    pub issued_macs: u64,
    /// Compute utilization: useful slots / (lanes × cycles).
    pub utilization: f64,
}

/// Scheduling knobs (for the Fig. 16(b) ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePolicy {
    /// Inter-block placement.
    pub inter: InterBlockPolicy,
    /// Intra-block lane packing.
    pub intra: IntraBlockPolicy,
}

impl SchedulePolicy {
    /// The policy an architecture ships with.
    pub fn native(arch: Arch) -> Self {
        match arch {
            // TB-STC's hierarchical scheduling; RM-STC's row-merge
            // dataflow achieves the same stream merging for unstructured
            // work; the FAN ablation keeps TB-STC's scheduler.
            Arch::TbStc | Arch::DvpeFan | Arch::RmStc | Arch::Sgcn => SchedulePolicy {
                inter: InterBlockPolicy::SparsityAware,
                intra: IntraBlockPolicy::Balanced,
            },
            // VEGETA/HighLight ship one-dimensional workload balancing
            // (row-wise reordering, paper §I challenge 3), modelled as
            // balanced placement; their ratio-grouping penalty lives in
            // the slot counts instead.
            Arch::Vegeta | Arch::Highlight => SchedulePolicy {
                inter: InterBlockPolicy::SparsityAware,
                intra: IntraBlockPolicy::Balanced,
            },
            // Uniform patterns have nothing to balance.
            Arch::Tc | Arch::Stc => SchedulePolicy {
                inter: InterBlockPolicy::Direct,
                intra: IntraBlockPolicy::Balanced,
            },
        }
    }

    /// The non-scheduled ablation point (Fig. 16(b) "w/o scheduling").
    pub fn naive() -> Self {
        SchedulePolicy {
            inter: InterBlockPolicy::Direct,
            intra: IntraBlockPolicy::Naive,
        }
    }
}

/// Extracts the per-block work list the architecture's dataflow sees,
/// walking the sampled weights in 8×8 blocks.
pub fn block_works(arch: Arch, layer: &SparseLayer) -> Vec<BlockWork> {
    use tbstc_sparsity::SparsityDim;
    let w = layer.sampled();
    let m = 8usize;
    let (rows, cols) = w.shape();
    let grid_rows = rows.div_ceil(m);
    let grid_cols = cols.div_ceil(m);
    let mut works = Vec::with_capacity(grid_rows * grid_cols);
    // The TBS block list and its grid width are loop-invariant; resolve
    // them once instead of per block.
    let tbs_blocks = layer
        .tbs()
        .map(|t| (t.blocks(), t.mask().cols().div_ceil(t.config().m)));

    for br in 0..grid_rows {
        for bc in 0..grid_cols {
            let (r0, c0) = (br * m, bc * m);
            // Per-row non-zero counts of this block.
            let mut row_nnz = [0usize; 8];
            for (dr, count) in row_nnz.iter_mut().enumerate() {
                for dc in 0..m {
                    if let Some(v) = w.get(r0 + dr, c0 + dc) {
                        if v != 0.0 {
                            *count += 1;
                        }
                    }
                }
            }
            let nnz: usize = row_nnz.iter().sum();
            let nonempty = row_nnz.iter().filter(|&&c| c > 0).count();
            // TBS blocks carry their sparsity dimension; everything else
            // is reduction-dimension by construction.
            let independent_dim = tbs_blocks
                .and_then(|(blocks, gc)| {
                    blocks
                        .get(br * gc + bc)
                        .map(|b| b.dim == SparsityDim::Independent)
                })
                .unwrap_or(false);

            let work = match arch {
                // Dense: every lane slot issues.
                Arch::Tc => BlockWork {
                    slots: dense_slots(rows, cols, r0, c0, m),
                    nonempty_rows: m.min(rows.saturating_sub(r0)),
                    independent_dim,
                },
                // STC executes its 4:8 mask; slots = nnz of the 50% mask.
                Arch::Stc => BlockWork {
                    slots: nnz,
                    nonempty_rows: nonempty,
                    independent_dim,
                },
                // VEGETA's vertical SIMD has two one-dimensional
                // constraints: adjacent row pairs run in lockstep
                // (2 × max per pair) and rows of different ratios need
                // separate B-select issues. Uniform ratios satisfy both
                // for free; heterogeneous blocks pay the binding one —
                // the challenge-3 imbalance.
                Arch::Vegeta => BlockWork {
                    slots: lockstep_slots(&row_nnz, 4).max(ratio_grouped_slots(&row_nnz, m)),
                    nonempty_rows: nonempty,
                    independent_dim,
                },
                // HighLight's uniform hierarchical ratio keeps rows
                // homogeneous (small grouping penalty) but pays two-level
                // metadata intersection on every cluster.
                Arch::Highlight => BlockWork {
                    slots: (ratio_grouped_slots(&row_nnz, m) as f64 * HIGHLIGHT_INTERSECT_OVERHEAD)
                        .ceil() as usize,
                    nonempty_rows: nonempty,
                    independent_dim,
                },
                Arch::RmStc => BlockWork {
                    slots: ((nnz as f64) / RM_STC_EFFICIENCY).ceil() as usize,
                    nonempty_rows: nonempty,
                    independent_dim,
                },
                Arch::Sgcn => BlockWork {
                    slots: ((nnz as f64) / SGCN_EFFICIENCY).ceil() as usize,
                    nonempty_rows: nonempty,
                    independent_dim,
                },
                // TB-STC (and the FAN ablation): nnz-proportional. The
                // per-original-row counts are the computation-format row
                // occupancy (elements group by reduction row in both block
                // dimensions), which is what the naive intra policy pays
                // per-row for.
                Arch::TbStc | Arch::DvpeFan => {
                    let slots = if arch == Arch::DvpeFan {
                        ((nnz as f64) * FAN_OVERHEAD).ceil() as usize
                    } else {
                        nnz
                    };
                    BlockWork {
                        slots,
                        nonempty_rows: nonempty,
                        independent_dim,
                    }
                }
            };
            works.push(work);
        }
    }
    works
}

/// Slots a lockstep SIMD engine needs: adjacent groups of `group` rows
/// run together, each costing `group × max(row nnz)`.
fn lockstep_slots(row_nnz: &[usize; 8], group: usize) -> usize {
    row_nnz
        .chunks(group)
        .map(|g| g.len() * g.iter().copied().max().unwrap_or(0))
        .sum()
}

/// Slots a ratio-grouped SIMD engine needs for one block: rows sharing a
/// non-zero count pack into common issues; each distinct count needs its
/// own issues (`width` lanes each).
fn ratio_grouped_slots(row_nnz: &[usize; 8], width: usize) -> usize {
    let mut issues = 0usize;
    for ratio in 1..=width {
        let rows = row_nnz.iter().filter(|&&c| c == ratio).count();
        if rows > 0 {
            issues += (rows * ratio).div_ceil(width);
        }
    }
    issues * width
}

/// Dense slots of a (possibly edge-clipped) block.
fn dense_slots(rows: usize, cols: usize, r0: usize, c0: usize, m: usize) -> usize {
    let h = m.min(rows.saturating_sub(r0));
    let w = m.min(cols.saturating_sub(c0));
    h * w
}

/// Runs the compute model for a layer on an architecture.
pub fn simulate_compute(
    arch: Arch,
    layer: &SparseLayer,
    cfg: &HwConfig,
    policy: SchedulePolicy,
) -> ComputeResult {
    let works = block_works(arch, layer);
    let lanes = arch.lanes(cfg.pe);
    let width = cfg.lane_width();
    let pes = lanes / width;

    let mut sampled_cycles =
        sched::schedule_stream(&works, layer.sn, pes, width, policy.inter, policy.intra);
    // SGCN pays a per-row frontend setup (CSR row decode), amortized over
    // the layer: one slot-cycle per non-empty row of the weight stream.
    if arch == Arch::Sgcn {
        let rows: u64 = works.iter().map(|w| w.nonempty_rows as u64).sum();
        sampled_cycles += rows.div_ceil(pes as u64);
    }

    let scale = layer.weight_scale() * layer.col_scale();
    let cycles = (sampled_cycles as f64 * scale).ceil() as u64;

    let useful_sampled: u64 = layer.sampled().count_nonzeros() as u64 * layer.sn as u64;
    let issued_sampled: u64 = works.iter().map(|w| w.slots as u64).sum::<u64>() * layer.sn as u64;
    let useful_macs = (useful_sampled as f64 * scale) as u64;
    let issued_macs = (issued_sampled as f64 * scale) as u64;

    let utilization = if cycles == 0 {
        1.0
    } else {
        (useful_macs as f64) / (cycles as f64 * lanes as f64)
    };

    ComputeResult {
        cycles,
        useful_macs,
        issued_macs,
        utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc_models::LayerShape;

    fn shape(m: usize, k: usize, n: usize) -> LayerShape {
        LayerShape {
            name: "test".into(),
            m,
            k,
            n,
            repeats: 1,
            prunable: true,
        }
    }

    fn cfg() -> HwConfig {
        HwConfig::paper_default()
    }

    fn run(arch: Arch, target: f64) -> ComputeResult {
        let layer = crate::LayerSim::new(&shape(128, 128, 64))
            .arch(arch)
            .sparsity(target)
            .seed(11)
            .build(&cfg());
        simulate_compute(arch, &layer, &cfg(), SchedulePolicy::native(arch))
    }

    #[test]
    fn dense_tc_full_utilization() {
        let r = run(Arch::Tc, 0.0);
        assert!(r.utilization > 0.9, "{}", r.utilization);
        assert_eq!(r.useful_macs, 128 * 128 * 64);
    }

    #[test]
    fn stc_executes_half_density_regardless_of_target() {
        let lo = run(Arch::Stc, 0.5);
        let hi = run(Arch::Stc, 0.875);
        // Same cycles: the 4:8 floor.
        assert_eq!(lo.cycles, hi.cycles);
        let dense = run(Arch::Tc, 0.0);
        let ratio = dense.cycles as f64 / lo.cycles as f64;
        assert!((1.8..2.2).contains(&ratio), "STC ≈ 2x dense: {ratio}");
    }

    #[test]
    fn tb_stc_scales_with_sparsity() {
        let half = run(Arch::TbStc, 0.5);
        let deep = run(Arch::TbStc, 0.875);
        let ratio = half.cycles as f64 / deep.cycles as f64;
        assert!(ratio > 2.0, "87.5% sparsity much faster than 50%: {ratio}");
    }

    #[test]
    fn tb_stc_near_perfect_utilization() {
        let r = run(Arch::TbStc, 0.75);
        assert!(r.utilization > 0.85, "{}", r.utilization);
    }

    #[test]
    fn tb_stc_beats_lockstep_engines_at_equal_sparsity() {
        let tb = run(Arch::TbStc, 0.75);
        let veg = run(Arch::Vegeta, 0.75);
        assert!(
            veg.cycles as f64 > tb.cycles as f64 * 1.05,
            "VEGETA {} vs TB-STC {}",
            veg.cycles,
            tb.cycles
        );
        assert!(tb.utilization > veg.utilization);
    }

    #[test]
    fn rm_stc_close_to_tb_stc_in_speed() {
        // Paper: RM-STC speedup gap is only ~1.06x.
        let tb = run(Arch::TbStc, 0.75);
        let rm = run(Arch::RmStc, 0.75);
        let ratio = rm.cycles as f64 / tb.cycles as f64;
        assert!((1.0..1.25).contains(&ratio), "{ratio}");
    }

    #[test]
    fn naive_scheduling_hurts_tb_stc() {
        let layer = crate::LayerSim::new(&shape(128, 128, 64))
            .arch(Arch::TbStc)
            .sparsity(0.75)
            .seed(12)
            .build(&cfg());
        let smart = simulate_compute(
            Arch::TbStc,
            &layer,
            &cfg(),
            SchedulePolicy::native(Arch::TbStc),
        );
        let naive = simulate_compute(Arch::TbStc, &layer, &cfg(), SchedulePolicy::naive());
        let gain = naive.cycles as f64 / smart.cycles as f64;
        assert!(
            (1.3..6.0).contains(&gain),
            "scheduling gain {gain} (paper: 1.57x utilization)"
        );
    }

    #[test]
    fn utilization_never_exceeds_one() {
        for arch in Arch::MAIN_BASELINES {
            let r = run(arch, 0.6);
            assert!(r.utilization <= 1.0 + 1e-9, "{arch}: {}", r.utilization);
            assert!(r.issued_macs >= r.useful_macs, "{arch}");
        }
    }

    #[test]
    fn scaling_preserves_per_element_cost() {
        // A 4x larger layer (sampled identically) costs ~4x the cycles.
        let small = crate::LayerSim::new(&shape(128, 128, 64))
            .arch(Arch::TbStc)
            .sparsity(0.5)
            .seed(13)
            .build(&cfg());
        let big = crate::LayerSim::new(&shape(256, 256, 64))
            .arch(Arch::TbStc)
            .sparsity(0.5)
            .seed(13)
            .build(&cfg());
        let a = simulate_compute(
            Arch::TbStc,
            &small,
            &cfg(),
            SchedulePolicy::native(Arch::TbStc),
        );
        let b = simulate_compute(
            Arch::TbStc,
            &big,
            &cfg(),
            SchedulePolicy::native(Arch::TbStc),
        );
        let ratio = b.cycles as f64 / a.cycles as f64;
        assert!((3.0..5.0).contains(&ratio), "{ratio}");
    }

    #[test]
    fn fan_slower_than_dvpe() {
        let tb = run(Arch::TbStc, 0.75);
        let fan = run(Arch::DvpeFan, 0.75);
        assert!(fan.cycles >= tb.cycles);
    }

    #[test]
    fn ratio_grouping_penalizes_mixed_rows() {
        // Uniform rows (all N=2): 2 issues = 16 slots = nnz.
        let uniform = ratio_grouped_slots(&[2; 8], 8);
        assert_eq!(uniform, 16);
        // Mixed rows {8,4,2,1,1,0,0,0}: each ratio its own issues.
        let mixed = ratio_grouped_slots(&[8, 4, 2, 1, 1, 0, 0, 0], 8);
        assert!(mixed > 16, "mixed rows need more slots: {mixed}");
    }

    #[test]
    fn lockstep_free_on_uniform_rows() {
        assert_eq!(lockstep_slots(&[4; 8], 2), 32); // = nnz
        assert_eq!(lockstep_slots(&[4; 8], 4), 32);
        // Heterogeneous neighbours pad to the group max.
        let mixed = lockstep_slots(&[8, 1, 4, 0, 2, 2, 1, 0], 2);
        let nnz = 8 + 1 + 4 + 2 + 2 + 1;
        assert!(mixed > nnz, "{mixed} > {nnz}");
        assert_eq!(mixed, 2 * (8 + 4 + 2 + 1));
        // Wider lockstep pads at least as much.
        assert!(lockstep_slots(&[8, 1, 4, 0, 2, 2, 1, 0], 4) >= mixed);
    }

    #[test]
    fn sgcn_wasteful_at_dnn_sparsity() {
        let tb = run(Arch::TbStc, 0.6);
        let sg = run(Arch::Sgcn, 0.6);
        assert!(
            sg.cycles as f64 > tb.cycles as f64 * 1.2,
            "SGCN {} TB {}",
            sg.cycles,
            tb.cycles
        );
    }
}
