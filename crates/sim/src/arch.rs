//! The `Arch` enum: a cheap copyable tag for the architectures in the
//! registry. All behaviour lives in [`crate::archs`] — one module per
//! baseline implementing [`ArchModel`] — and every method here delegates
//! to the registered model.

use std::str::FromStr;
use std::sync::Arc;

use tbstc_energy::components::{DatapathCosts, PeArrayShape};
use tbstc_sparsity::PatternKind;

use crate::archs::{self, ArchModel};

/// A simulated accelerator architecture (§VII-A2 baselines + ablations).
///
/// Discriminant order matches [`archs::REGISTRY`]; the registry's
/// `registry_order_matches_enum` test locks the correspondence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arch {
    /// Dense Tensor Core.
    Tc,
    /// NVIDIA Sparse Tensor Core (2:4 / 4:8 tile sparsity only).
    Stc,
    /// VEGETA: row-wise N:M with per-row ratios.
    Vegeta,
    /// HighLight: hierarchical structured sparsity.
    Highlight,
    /// RM-STC: unstructured row-merge sparse tensor core.
    RmStc,
    /// TB-STC: this paper.
    TbStc,
    /// Ablation: TB-STC's DVPEs replaced by SIGMA's FAN reduction
    /// (paper §VII-E2).
    DvpeFan,
    /// SGCN: high-sparsity GNN accelerator (Fig. 15(d) baseline).
    Sgcn,
}

impl Arch {
    /// Every registered architecture, in the registry's (paper plotting)
    /// order.
    pub const ALL: [Arch; 8] = [
        Arch::Tc,
        Arch::Stc,
        Arch::Vegeta,
        Arch::Highlight,
        Arch::RmStc,
        Arch::TbStc,
        Arch::DvpeFan,
        Arch::Sgcn,
    ];

    /// The baselines of the main comparison figures (Fig. 12/13), in the
    /// paper's plotting order.
    pub const MAIN_BASELINES: [Arch; 6] = [
        Arch::Tc,
        Arch::Stc,
        Arch::Vegeta,
        Arch::Highlight,
        Arch::RmStc,
        Arch::TbStc,
    ];

    /// The registered model implementing this architecture.
    pub fn model(self) -> &'static dyn ArchModel {
        archs::model(self)
    }

    /// Canonical lowercase name (job specs, CLI, caches) — the inverse of
    /// [`Arch::from_str`].
    pub fn canonical_name(self) -> &'static str {
        self.model().canonical_name()
    }

    /// Accepted alternate spellings.
    pub fn aliases(self) -> &'static [&'static str] {
        self.model().aliases()
    }

    /// The sparsity pattern this architecture natively executes.
    pub fn native_pattern(self) -> PatternKind {
        self.model().native_pattern()
    }

    /// The datapath cost inventory for this architecture.
    pub fn datapath(self, shape: PeArrayShape) -> DatapathCosts {
        self.model().datapath(shape)
    }

    /// Multiplier-lane count available to this architecture. The paper
    /// keeps peak compute equal across baselines (§VII-A1).
    pub fn lanes(self, shape: PeArrayShape) -> usize {
        self.model().lanes(shape)
    }

    /// Off-chip bandwidth override in GB/s; `None` = platform default.
    pub fn bandwidth_override_gbps(self) -> Option<f64> {
        self.model().bandwidth_override_gbps()
    }

    /// Whether this architecture has the inter/intra-block sparsity-aware
    /// scheduling of §VI (used by the Fig. 16(b) ablation).
    pub fn has_hierarchical_scheduling(self) -> bool {
        self.model().has_hierarchical_scheduling()
    }

    /// Per-MAC dynamic-energy multiplier over the plain FP16 MAC.
    pub fn mac_energy_multiplier(self) -> f64 {
        self.model().mac_energy_multiplier()
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.model().display_name())
    }
}

/// The identity of any simulated architecture: a registry builtin (a
/// cheap [`Arch`] tag) or a spec-defined custom architecture carrying its
/// declared name. Results ([`crate::LayerResult`], [`crate::ModelResult`])
/// record an `ArchId` so spec-driven and builtin runs flow through the
/// same pipeline.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArchId {
    /// A registry architecture.
    Builtin(Arch),
    /// A spec-defined architecture, by its declared canonical name.
    Custom(Arc<str>),
}

impl ArchId {
    /// A custom identity from a declared spec name.
    pub fn custom(name: &str) -> ArchId {
        ArchId::Custom(Arc::from(name))
    }

    /// The builtin tag, when this is a registry architecture.
    pub fn builtin(&self) -> Option<Arch> {
        match self {
            ArchId::Builtin(a) => Some(*a),
            ArchId::Custom(_) => None,
        }
    }

    /// Canonical lowercase name: the registry name for builtins, the
    /// spec's declared name for customs.
    pub fn canonical_name(&self) -> &str {
        match self {
            ArchId::Builtin(a) => a.canonical_name(),
            ArchId::Custom(name) => name,
        }
    }
}

impl From<Arch> for ArchId {
    fn from(a: Arch) -> ArchId {
        ArchId::Builtin(a)
    }
}

impl PartialEq<Arch> for ArchId {
    fn eq(&self, other: &Arch) -> bool {
        self.builtin() == Some(*other)
    }
}

impl PartialEq<ArchId> for Arch {
    fn eq(&self, other: &ArchId) -> bool {
        other.builtin() == Some(*self)
    }
}

impl std::fmt::Display for ArchId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchId::Builtin(a) => a.fmt(f),
            ArchId::Custom(name) => f.write_str(name),
        }
    }
}

/// An architecture name that matched no registry entry. Its display lists
/// every valid canonical name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArchError {
    name: String,
}

impl std::fmt::Display for ParseArchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown arch `{}` (valid: {})",
            self.name,
            archs::canonical_names()
        )
    }
}

impl std::error::Error for ParseArchError {}

impl FromStr for Arch {
    type Err = ParseArchError;

    /// Parses a canonical name or alias, backed by the registry.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        archs::by_name(s)
            .and_then(|m| m.id().builtin())
            .ok_or_else(|| ParseArchError { name: s.into() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_match_paper_table() {
        assert_eq!(Arch::Stc.native_pattern(), PatternKind::TileNm);
        assert_eq!(Arch::Vegeta.native_pattern(), PatternKind::RowWiseVegeta);
        assert_eq!(Arch::TbStc.native_pattern(), PatternKind::Tbs);
        assert_eq!(Arch::RmStc.native_pattern(), PatternKind::Unstructured);
    }

    #[test]
    fn sgcn_has_high_bandwidth_ratio() {
        let shape = PeArrayShape::paper_default();
        assert_eq!(Arch::Sgcn.lanes(shape), 1024);
        assert_eq!(Arch::Sgcn.bandwidth_override_gbps(), Some(256.0));
        assert_eq!(Arch::TbStc.bandwidth_override_gbps(), None);
    }

    #[test]
    fn only_tb_stc_has_hierarchical_scheduling() {
        for a in Arch::MAIN_BASELINES {
            assert_eq!(a.has_hierarchical_scheduling(), a == Arch::TbStc);
        }
    }

    #[test]
    fn datapath_costs_are_distinct() {
        let shape = PeArrayShape::paper_default();
        let tb = Arch::TbStc.datapath(shape).total_power_mw();
        let rm = Arch::RmStc.datapath(shape).total_power_mw();
        let tc = Arch::Tc.datapath(shape).total_power_mw();
        assert!(rm > tb, "RM-STC {rm} > TB-STC {tb}");
        assert!(tb > tc, "TB-STC {tb} > TC {tc}");
    }

    #[test]
    fn display_names() {
        assert_eq!(Arch::TbStc.to_string(), "TB-STC");
        assert_eq!(Arch::DvpeFan.to_string(), "DVPE+FAN");
    }

    #[test]
    fn names_roundtrip_through_the_registry() {
        for arch in Arch::ALL {
            assert_eq!(arch.canonical_name().parse::<Arch>(), Ok(arch));
            for alias in arch.aliases() {
                assert_eq!(alias.parse::<Arch>(), Ok(arch));
            }
        }
    }

    #[test]
    fn parse_error_lists_all_valid_names() {
        let err = "tpu".parse::<Arch>().unwrap_err().to_string();
        assert!(err.contains("unknown arch `tpu`"), "{err}");
        for arch in Arch::ALL {
            assert!(err.contains(arch.canonical_name()), "{err}");
        }
    }
}
