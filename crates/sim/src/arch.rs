//! The architecture registry: which pattern each baseline executes and
//! what its datapath costs are.

use tbstc_energy::components::{self, DatapathCosts, PeArrayShape};
use tbstc_sparsity::PatternKind;

/// A simulated accelerator architecture (§VII-A2 baselines + ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arch {
    /// Dense Tensor Core.
    Tc,
    /// NVIDIA Sparse Tensor Core (2:4 / 4:8 tile sparsity only).
    Stc,
    /// VEGETA: row-wise N:M with per-row ratios.
    Vegeta,
    /// HighLight: hierarchical structured sparsity.
    Highlight,
    /// RM-STC: unstructured row-merge sparse tensor core.
    RmStc,
    /// TB-STC: this paper.
    TbStc,
    /// Ablation: TB-STC's DVPEs replaced by SIGMA's FAN reduction
    /// (paper §VII-E2).
    DvpeFan,
    /// SGCN: high-sparsity GNN accelerator (Fig. 15(d) baseline).
    Sgcn,
}

impl Arch {
    /// The baselines of the main comparison figures (Fig. 12/13), in the
    /// paper's plotting order.
    pub const MAIN_BASELINES: [Arch; 6] = [
        Arch::Tc,
        Arch::Stc,
        Arch::Vegeta,
        Arch::Highlight,
        Arch::RmStc,
        Arch::TbStc,
    ];

    /// The sparsity pattern this architecture natively executes.
    pub fn native_pattern(self) -> PatternKind {
        match self {
            Arch::Tc => PatternKind::Dense,
            Arch::Stc => PatternKind::TileNm,
            Arch::Vegeta => PatternKind::RowWiseVegeta,
            Arch::Highlight => PatternKind::RowWiseHighlight,
            Arch::RmStc | Arch::Sgcn => PatternKind::Unstructured,
            Arch::TbStc | Arch::DvpeFan => PatternKind::Tbs,
        }
    }

    /// The datapath cost inventory for this architecture.
    pub fn datapath(self, shape: PeArrayShape) -> DatapathCosts {
        match self {
            Arch::Tc => components::tensor_core(shape),
            Arch::Stc => components::nvidia_stc(shape),
            Arch::Vegeta => components::vegeta(shape),
            Arch::Highlight => components::highlight(shape),
            Arch::RmStc => components::rm_stc(shape),
            Arch::TbStc => components::tb_stc(shape),
            Arch::DvpeFan => components::dvpe_with_fan(shape),
            // SGCN's compressed-sparse frontend carries gather/union-class
            // logic like RM-STC's.
            Arch::Sgcn => {
                let mut dp = components::rm_stc(shape);
                dp.name = "SGCN";
                dp
            }
        }
    }

    /// Multiplier-lane count available to this architecture. The paper
    /// keeps peak compute equal across baselines (§VII-A1); SGCN differs
    /// through its bandwidth ratio and element-granular frontend, not its
    /// lane count.
    pub fn lanes(self, shape: PeArrayShape) -> usize {
        shape.mults()
    }

    /// Off-chip bandwidth override in GB/s (SGCN provisions 256 GB/s,
    /// §VII-D4); `None` = use the platform default.
    pub fn bandwidth_override_gbps(self) -> Option<f64> {
        match self {
            Arch::Sgcn => Some(256.0),
            _ => None,
        }
    }

    /// Whether this architecture has the inter/intra-block sparsity-aware
    /// scheduling of §VI (used by the Fig. 16(b) ablation).
    pub fn has_hierarchical_scheduling(self) -> bool {
        matches!(self, Arch::TbStc)
    }

    /// Per-MAC dynamic-energy multiplier over the plain FP16 MAC.
    /// Unstructured engines burn extra energy per operand on index
    /// matching (RM-STC's gather/union; SGCN's CSR intersection) — the
    /// reason their EDP trails TB-STC even at similar speed (Fig. 6(d),
    /// §VII-C1).
    pub fn mac_energy_multiplier(self) -> f64 {
        match self {
            Arch::RmStc => 2.1,
            Arch::Sgcn => 1.8,
            Arch::DvpeFan => 1.45, // FAN forwards operands through extra nodes
            _ => 1.0,
        }
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Arch::Tc => "TC",
            Arch::Stc => "STC",
            Arch::Vegeta => "VEGETA",
            Arch::Highlight => "HighLight",
            Arch::RmStc => "RM-STC",
            Arch::TbStc => "TB-STC",
            Arch::DvpeFan => "DVPE+FAN",
            Arch::Sgcn => "SGCN",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_match_paper_table() {
        assert_eq!(Arch::Stc.native_pattern(), PatternKind::TileNm);
        assert_eq!(Arch::Vegeta.native_pattern(), PatternKind::RowWiseVegeta);
        assert_eq!(Arch::TbStc.native_pattern(), PatternKind::Tbs);
        assert_eq!(Arch::RmStc.native_pattern(), PatternKind::Unstructured);
    }

    #[test]
    fn sgcn_has_high_bandwidth_ratio() {
        let shape = PeArrayShape::paper_default();
        assert_eq!(Arch::Sgcn.lanes(shape), 1024);
        assert_eq!(Arch::Sgcn.bandwidth_override_gbps(), Some(256.0));
        assert_eq!(Arch::TbStc.bandwidth_override_gbps(), None);
    }

    #[test]
    fn only_tb_stc_has_hierarchical_scheduling() {
        for a in Arch::MAIN_BASELINES {
            assert_eq!(a.has_hierarchical_scheduling(), a == Arch::TbStc);
        }
    }

    #[test]
    fn datapath_costs_are_distinct() {
        let shape = PeArrayShape::paper_default();
        let tb = Arch::TbStc.datapath(shape).total_power_mw();
        let rm = Arch::RmStc.datapath(shape).total_power_mw();
        let tc = Arch::Tc.datapath(shape).total_power_mw();
        assert!(rm > tb, "RM-STC {rm} > TB-STC {tb}");
        assert!(tb > tc, "TB-STC {tb} > TC {tc}");
    }

    #[test]
    fn display_names() {
        assert_eq!(Arch::TbStc.to_string(), "TB-STC");
        assert_eq!(Arch::DvpeFan.to_string(), "DVPE+FAN");
    }
}
