//! Simulation results: per-layer and per-model.

use tbstc_energy::EdpPoint;

use crate::arch::ArchId;

/// Where the cycles of a layer went (paper Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleBreakdown {
    /// Cycles the PE array was the bottleneck.
    pub compute: u64,
    /// Cycles the memory system was the bottleneck.
    pub memory: u64,
    /// Codec conversion cycles hidden under compute/memory.
    pub codec_hidden: u64,
    /// Codec conversion cycles exposed on the critical path.
    pub codec_exposed: u64,
}

impl CycleBreakdown {
    /// Total critical-path cycles.
    pub fn total(&self) -> u64 {
        self.compute.max(self.memory) + self.codec_exposed
    }

    /// The codec's share of the execution (hidden + exposed over total) —
    /// the paper reports an average of 3.57 %.
    pub fn codec_share(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        (self.codec_hidden + self.codec_exposed) as f64 / t as f64
    }

    /// Whether the layer is memory-bound.
    pub fn memory_bound(&self) -> bool {
        self.memory > self.compute
    }
}

/// The result of simulating one layer on one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerResult {
    /// Layer name.
    pub name: String,
    /// Architecture simulated (builtin tag or spec-declared name).
    pub arch: ArchId,
    /// Critical-path cycles.
    pub cycles: u64,
    /// Cycle breakdown.
    pub breakdown: CycleBreakdown,
    /// Useful MACs executed.
    pub useful_macs: u64,
    /// Compute utilization (useful MACs over lane-cycles).
    pub compute_utilization: f64,
    /// Weight-stream bandwidth utilization.
    pub bandwidth_utilization: f64,
    /// Total off-chip traffic, bytes.
    pub traffic_bytes: f64,
    /// Total energy, pJ.
    pub energy_pj: f64,
}

impl LayerResult {
    /// The `(delay, energy)` point for EDP comparisons.
    pub fn edp_point(&self) -> EdpPoint {
        EdpPoint {
            cycles: self.cycles,
            energy_pj: self.energy_pj,
        }
    }

    /// Speedup relative to another result on the same layer.
    pub fn speedup_over(&self, baseline: &LayerResult) -> f64 {
        self.edp_point().speedup_over(&baseline.edp_point())
    }

    /// EDP improvement relative to another result on the same layer.
    pub fn edp_gain_over(&self, baseline: &LayerResult) -> f64 {
        self.edp_point().edp_gain_over(&baseline.edp_point())
    }
}

/// The result of simulating a whole model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelResult {
    /// Architecture simulated (builtin tag or spec-declared name).
    pub arch: ArchId,
    /// Model name.
    pub model: String,
    /// Per-layer results (repeats already expanded into the totals).
    pub layers: Vec<LayerResult>,
    /// Total cycles over all layers and repeats.
    pub total_cycles: u64,
    /// Total energy over all layers and repeats, pJ.
    pub total_energy_pj: f64,
}

impl ModelResult {
    /// The model-level `(delay, energy)` point.
    pub fn edp_point(&self) -> EdpPoint {
        EdpPoint {
            cycles: self.total_cycles,
            energy_pj: self.total_energy_pj,
        }
    }

    /// End-to-end speedup over a baseline run of the same model.
    pub fn speedup_over(&self, baseline: &ModelResult) -> f64 {
        baseline.total_cycles as f64 / self.total_cycles as f64
    }

    /// End-to-end EDP gain over a baseline run of the same model.
    pub fn edp_gain_over(&self, baseline: &ModelResult) -> f64 {
        self.edp_point().edp_gain_over(&baseline.edp_point())
    }

    /// Mean codec share across layers (Fig. 14's average line).
    pub fn mean_codec_share(&self) -> f64 {
        if self.layers.is_empty() {
            return 0.0;
        }
        self.layers
            .iter()
            .map(|l| l.breakdown.codec_share())
            .sum::<f64>()
            / self.layers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_is_bottleneck_plus_exposed() {
        let b = CycleBreakdown {
            compute: 100,
            memory: 80,
            codec_hidden: 10,
            codec_exposed: 5,
        };
        assert_eq!(b.total(), 105);
        assert!(!b.memory_bound());
        assert!((b.codec_share() - 15.0 / 105.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = CycleBreakdown::default();
        assert_eq!(b.total(), 0);
        assert_eq!(b.codec_share(), 0.0);
    }

    #[test]
    fn layer_speedup_and_edp() {
        let fast = LayerResult {
            name: "l".into(),
            arch: crate::arch::Arch::TbStc.into(),
            cycles: 100,
            breakdown: CycleBreakdown::default(),
            useful_macs: 0,
            compute_utilization: 1.0,
            bandwidth_utilization: 1.0,
            traffic_bytes: 0.0,
            energy_pj: 50.0,
        };
        let slow = LayerResult {
            cycles: 200,
            energy_pj: 100.0,
            ..fast.clone()
        };
        assert_eq!(fast.speedup_over(&slow), 2.0);
        assert_eq!(fast.edp_gain_over(&slow), 4.0);
    }
}
