//! The memory-traffic model: weight/activation/output streams and DRAM
//! replay.
//!
//! Weight (A-matrix) traffic depends on the storage format each
//! architecture uses — this is where the paper's challenge 2 lives. The
//! format behaviour itself is owned by the architectures: the native
//! branch of [`a_trace`] asks the registered
//! [`crate::archs::ArchModel::weight_trace`] for the sampled stream
//! (dense rows for TC, 4:8 metadata for STC, grouped/whole-matrix SDC for
//! VEGETA/HighLight, bitmap for RM-STC, DDC for TB-STC, CSR for SGCN),
//! while the explicit [`FormatOverride`]s (codec ablation, quantization
//! study) are applied here, uniformly.
//!
//! Activation (B) and output (D) traffic are identical across
//! architectures (dense streams), so format differences show up purely in
//! the A stream — replayed through the DRAM model and scaled to the real
//! layer size.

use tbstc_dram::{DramConfig, DramModel};
use tbstc_formats::{Csr, Sdc};

use crate::arch::Arch;
use crate::archs::{self, ArchModel, WeightTrace};
use crate::config::HwConfig;
use crate::layer::SparseLayer;
use crate::plan::BlockPlan;

/// Storage-format override for the Fig. 16(a) codec ablation and the
/// Fig. 15(b) quantization study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FormatOverride {
    /// Use the architecture's native format.
    #[default]
    Native,
    /// Force single-dimensional compression (row-aligned padding).
    Sdc,
    /// Force CSR with block-gather consumption.
    Csr,
    /// Native format with int8 weight values (halved value traffic; the
    /// "Q+S" configuration of Fig. 15(b)).
    Int8,
}

/// Memory-side result for one layer (scaled to real size).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryResult {
    /// Weight-stream bytes (format-dependent).
    pub a_bytes: f64,
    /// Activation bytes (dense `K × N` fp16).
    pub b_bytes: f64,
    /// Output bytes (dense `M × N` fp16).
    pub d_bytes: f64,
    /// Total memory cycles.
    pub cycles: u64,
    /// Total DRAM energy, pJ.
    pub energy_pj: f64,
    /// Useful-over-peak bandwidth utilization of the weight stream.
    pub a_bandwidth_utilization: f64,
}

impl MemoryResult {
    /// Total off-chip traffic in bytes.
    pub fn total_bytes(&self) -> f64 {
        self.a_bytes + self.b_bytes + self.d_bytes
    }
}

/// Efficiency of a perfectly sequential dense stream (pipeline gaps,
/// refresh).
const STREAM_EFFICIENCY: f64 = 0.95;

/// Simulates the memory side of a layer.
///
/// Builds a fresh [`BlockPlan`]; use [`simulate_memory_with_plan`] to
/// share one plan across the compute and memory models.
pub fn simulate_memory(
    arch: Arch,
    layer: &SparseLayer,
    cfg: &HwConfig,
    fmt: FormatOverride,
) -> MemoryResult {
    simulate_memory_with_plan(arch, layer, &BlockPlan::build(layer), cfg, fmt)
}

/// Simulates the memory side of a layer using a pre-built [`BlockPlan`].
pub fn simulate_memory_with_plan(
    arch: Arch,
    layer: &SparseLayer,
    plan: &BlockPlan,
    cfg: &HwConfig,
    fmt: FormatOverride,
) -> MemoryResult {
    simulate_memory_on(archs::model(arch), layer, plan, cfg, fmt)
}

/// Simulates the memory side against any [`ArchModel`] — registry builtin
/// or spec-interpreted [`crate::spec::CustomArch`].
pub fn simulate_memory_on(
    model: &dyn ArchModel,
    layer: &SparseLayer,
    plan: &BlockPlan,
    cfg: &HwConfig,
    fmt: FormatOverride,
) -> MemoryResult {
    let dram_cfg = match model.bandwidth_override_gbps() {
        Some(gbps) => DramConfig {
            bytes_per_cycle: gbps,
            ..cfg.dram
        },
        None => cfg.dram,
    };

    // --- Weight stream: replay the sampled trace, scale up. ---
    let trace = a_trace(model, layer, plan, fmt);
    let mut dram = DramModel::new(dram_cfg);
    let a_res = dram.replay(trace.requests.iter().copied());
    let ws = layer.weight_scale();
    let a_cycles = (a_res.cycles as f64 * ws).ceil() as u64;
    let a_energy = a_res.energy_pj * ws;
    let a_bytes = a_res.useful_bytes as f64 * ws;
    // Bandwidth utilization counts only *information* bytes: format
    // padding (SDC) and burst waste (CSR) both show up as lost
    // utilization — the paper's challenge-2 metric.
    let info_sampled = info_bytes(model, layer, plan, fmt);
    let a_util = if a_res.cycles == 0 {
        1.0
    } else {
        (info_sampled / (a_res.cycles as f64 * dram_cfg.bytes_per_cycle)).min(1.0)
    };

    // --- Activation and output streams: dense sequential. ---
    // B is reused across the weight row-strips; when it exceeds the
    // on-chip buffer (half of which is reserved for weight/output
    // double-buffering) it must be re-streamed once per additional pass,
    // up to once per 8-row weight strip.
    let b_once = layer.k as f64 * layer.n as f64 * 2.0;
    let buffer_budget = (cfg.buffer_kib as f64) * 1024.0 * 0.5;
    let max_passes = (layer.m as f64 / 8.0).ceil().max(1.0);
    let passes = (b_once / buffer_budget).ceil().clamp(1.0, max_passes);
    let b_bytes = b_once * passes;
    let d_bytes = layer.m as f64 * layer.n as f64 * 2.0;
    let bd_bytes = b_bytes + d_bytes;
    let bd_cycles = (bd_bytes / (dram_cfg.bytes_per_cycle * STREAM_EFFICIENCY)).ceil() as u64;
    let bd_energy = bd_bytes * dram_cfg.read_energy_pj_per_byte
        + (bd_bytes / dram_cfg.row_bytes as f64) * dram_cfg.act_energy_pj
        + bd_cycles as f64 * dram_cfg.background_pj_per_cycle;

    MemoryResult {
        a_bytes,
        b_bytes,
        d_bytes,
        cycles: a_cycles + bd_cycles,
        energy_pj: a_energy + bd_energy,
        a_bandwidth_utilization: a_util,
    }
}

/// The information content of the sampled weight stream: the bytes any
/// format must move at minimum (values + one index per non-zero; the full
/// matrix when the architecture streams dense rows for this layer/format).
fn info_bytes(
    model: &dyn ArchModel,
    layer: &SparseLayer,
    plan: &BlockPlan,
    fmt: FormatOverride,
) -> f64 {
    if model.dense_info_stream(layer, fmt) {
        let (rows, cols) = plan.sampled_shape();
        return (rows * cols) as f64 * 2.0;
    }
    if fmt == FormatOverride::Int8 {
        return plan.total_nnz() as f64 * 2.0; // 1B value + packed index
    }
    plan.total_nnz() as f64 * 3.0
}

/// Builds the sampled weight-stream trace for an architecture: the
/// override formats here, the native format from the registered model.
fn a_trace(
    model: &dyn ArchModel,
    layer: &SparseLayer,
    plan: &BlockPlan,
    fmt: FormatOverride,
) -> WeightTrace {
    match fmt {
        FormatOverride::Sdc => {
            WeightTrace::from_access_trace(Sdc::encode(layer.sampled()).access_trace())
        }
        FormatOverride::Csr => {
            WeightTrace::from_access_trace(Csr::encode(layer.sampled()).block_access_trace(8, 8))
        }
        FormatOverride::Int8 => {
            // DDC layout with 1-byte values: info words + nnz × 1.5 bytes.
            let (gr, gc) = plan.grid();
            let blocks = (gr * gc) as u64;
            let bytes = blocks * 2 + (plan.total_nnz() as u64 * 3).div_ceil(2);
            WeightTrace::sequential(bytes)
        }
        FormatOverride::Native => model.weight_trace(layer, plan),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc_models::LayerShape;

    fn shape() -> LayerShape {
        LayerShape {
            name: "mem-test".into(),
            m: 128,
            k: 128,
            n: 64,
            repeats: 1,
            prunable: true,
        }
    }

    fn cfg() -> HwConfig {
        HwConfig::paper_default()
    }

    fn run(arch: Arch, target: f64, fmt: FormatOverride) -> MemoryResult {
        let layer = crate::LayerSim::new(&shape())
            .arch(arch)
            .sparsity(target)
            .seed(21)
            .build(&cfg());
        simulate_memory(arch, &layer, &cfg(), fmt)
    }

    #[test]
    fn dense_reads_full_matrix() {
        let r = run(Arch::Tc, 0.0, FormatOverride::Native);
        assert!((r.a_bytes - 128.0 * 128.0 * 2.0).abs() < 1.0);
        assert!(r.a_bandwidth_utilization > 0.85);
    }

    #[test]
    fn tb_stc_traffic_scales_with_sparsity() {
        let half = run(Arch::TbStc, 0.5, FormatOverride::Native);
        let deep = run(Arch::TbStc, 0.875, FormatOverride::Native);
        assert!(deep.a_bytes < half.a_bytes * 0.5);
    }

    #[test]
    fn ddc_bandwidth_beats_csr_and_sdc_on_tbs() {
        // The §V claim: 1.47x average bandwidth-utilization gain.
        let native = run(Arch::TbStc, 0.75, FormatOverride::Native);
        let sdc = run(Arch::TbStc, 0.75, FormatOverride::Sdc);
        let csr = run(Arch::TbStc, 0.75, FormatOverride::Csr);
        assert!(
            native.a_bandwidth_utilization
                > 1.2 * sdc.a_bandwidth_utilization.min(csr.a_bandwidth_utilization),
            "DDC {} vs SDC {} / CSR {}",
            native.a_bandwidth_utilization,
            sdc.a_bandwidth_utilization,
            csr.a_bandwidth_utilization
        );
        assert!(native.cycles <= sdc.cycles.min(csr.cycles));
    }

    #[test]
    fn csr_utilization_in_paper_band() {
        // Paper: <38.2% bandwidth utilization for CSR on TBS matrices.
        let csr = run(Arch::TbStc, 0.75, FormatOverride::Csr);
        assert!(
            csr.a_bandwidth_utilization < 0.45,
            "{}",
            csr.a_bandwidth_utilization
        );
    }

    #[test]
    fn sdc_pads_on_heterogeneous_rows() {
        let sdc = run(Arch::TbStc, 0.75, FormatOverride::Sdc);
        let native = run(Arch::TbStc, 0.75, FormatOverride::Native);
        assert!(
            sdc.a_bytes > native.a_bytes * 1.2,
            "SDC {} vs DDC {}",
            sdc.a_bytes,
            native.a_bytes
        );
    }

    #[test]
    fn b_and_d_streams_identical_across_archs() {
        let tb = run(Arch::TbStc, 0.75, FormatOverride::Native);
        let tc = run(Arch::Tc, 0.0, FormatOverride::Native);
        assert_eq!(tb.b_bytes, tc.b_bytes);
        assert_eq!(tb.d_bytes, tc.d_bytes);
    }

    #[test]
    fn sgcn_gets_higher_bandwidth() {
        let sg = run(Arch::Sgcn, 0.95, FormatOverride::Native);
        let tb = run(Arch::TbStc, 0.95, FormatOverride::Native);
        // Same B/D bytes but 4x channel: fewer cycles for SGCN.
        assert!(sg.cycles < tb.cycles);
    }

    #[test]
    fn traffic_scales_to_real_size() {
        let small = shape();
        let mut big = shape();
        big.m = 256;
        big.k = 256;
        let cfg = cfg();
        let ls = crate::LayerSim::new(&small)
            .arch(Arch::TbStc)
            .sparsity(0.5)
            .seed(5)
            .build(&cfg);
        let lb = crate::LayerSim::new(&big)
            .arch(Arch::TbStc)
            .sparsity(0.5)
            .seed(5)
            .build(&cfg);
        let rs = simulate_memory(Arch::TbStc, &ls, &cfg, FormatOverride::Native);
        let rb = simulate_memory(Arch::TbStc, &lb, &cfg, FormatOverride::Native);
        let ratio = rb.a_bytes / rs.a_bytes;
        assert!((3.5..4.5).contains(&ratio), "{ratio}");
    }
}

#[cfg(test)]
mod buffer_tests {
    use super::*;
    use tbstc_models::LayerShape;

    #[test]
    fn big_activations_reload_when_buffer_small() {
        // K×N×2 = 8 MB of B against a 1 MB half-budget: multiple passes.
        let shape = LayerShape {
            name: "big-b".into(),
            m: 4096,
            k: 16384,
            n: 256,
            repeats: 1,
            prunable: true,
        };
        let small = HwConfig {
            buffer_kib: 2048,
            ..HwConfig::paper_default()
        };
        let big = HwConfig {
            buffer_kib: 16384,
            ..HwConfig::paper_default()
        };
        let layer = crate::LayerSim::new(&shape)
            .arch(crate::Arch::TbStc)
            .sparsity(0.75)
            .seed(1)
            .build(&small);
        let r_small = simulate_memory(crate::Arch::TbStc, &layer, &small, FormatOverride::Native);
        let r_big = simulate_memory(crate::Arch::TbStc, &layer, &big, FormatOverride::Native);
        assert!(
            r_small.b_bytes > r_big.b_bytes * 3.0,
            "small buffer re-streams B: {} vs {}",
            r_small.b_bytes,
            r_big.b_bytes
        );
        assert!(r_small.cycles > r_big.cycles);
    }

    #[test]
    fn small_layers_read_b_once() {
        let shape = LayerShape {
            name: "small-b".into(),
            m: 128,
            k: 128,
            n: 64,
            repeats: 1,
            prunable: true,
        };
        let cfg = HwConfig::paper_default();
        let layer = crate::LayerSim::new(&shape)
            .arch(crate::Arch::TbStc)
            .sparsity(0.5)
            .seed(2)
            .build(&cfg);
        let r = simulate_memory(crate::Arch::TbStc, &layer, &cfg, FormatOverride::Native);
        assert!((r.b_bytes - 128.0 * 64.0 * 2.0).abs() < 1.0);
    }
}
