//! `BlockPlan`: the batched structure-of-arrays view of a layer's sampled
//! pruned weights.
//!
//! The compute, schedule and memory models all consume per-8×8-block
//! occupancy statistics of the sampled weights. Historically each of them
//! re-derived what Algorithm-1 sparsification had already computed by
//! walking the matrix element-by-element through bounds-checked `get`
//! calls. `BlockPlan` walks the matrix **once**, over contiguous row
//! slices, and stores every statistic in flat parallel columns:
//!
//! * `row_nnz` — per-block packed row occupancy (8 counts per block),
//! * `nnz` / `nonempty_rows` — per-block totals,
//! * `independent_dim` — the TBS sparsity-dimension flag per block,
//! * `dense_slots` / `block_rows` — edge-clipped block geometry,
//! * `matrix_row_nnz` — per-matrix-row totals (grouped-SDC formats),
//! * an occupancy-class histogram (blocks bucketed by `ceil(nnz / 8)`).
//!
//! The plan is the public currency between the sparsify, compute,
//! schedule and memory layers: [`crate::archs::ArchModel::block_works_batch`]
//! prices a whole plan in one array pass, `sched::schedule_stream`
//! consumes the resulting flat work list, and the memory model reads
//! `total_nnz` / `matrix_row_nnz` instead of re-counting the matrix.

use tbstc_sparsity::SparsityDim;

use crate::archs::BlockStats;
use crate::layer::SparseLayer;

/// Blocks are walked at the simulator's fixed 8×8 granularity.
const BLOCK: usize = 8;

/// Structure-of-arrays per-block statistics of one sampled layer.
///
/// All per-block columns are indexed by the row-major block index
/// `br * grid_cols + bc`; [`BlockPlan::stats`] reassembles the historical
/// [`BlockStats`] for one block when scalar pricing is needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPlan {
    grid_rows: usize,
    grid_cols: usize,
    rows: usize,
    cols: usize,
    /// Packed per-block row occupancy: block `i` owns `row_nnz[i*8..i*8+8]`.
    row_nnz: Vec<usize>,
    nnz: Vec<usize>,
    nonempty_rows: Vec<usize>,
    independent_dim: Vec<bool>,
    dense_slots: Vec<usize>,
    block_rows: Vec<usize>,
    matrix_row_nnz: Vec<usize>,
    occupancy_hist: [usize; BLOCK + 1],
    total_nnz: usize,
}

impl BlockPlan {
    /// Builds the plan from a layer's sampled weights in one row-major
    /// pass over contiguous row slices, plus one aggregation pass over
    /// the packed per-block counts.
    pub fn build(layer: &SparseLayer) -> Self {
        let w = layer.sampled();
        let (rows, cols) = w.shape();
        let grid_rows = rows.div_ceil(BLOCK);
        let grid_cols = cols.div_ceil(BLOCK);
        let n_blocks = grid_rows * grid_cols;

        // Pass 1: count non-zeros per (block, block-row) straight off the
        // matrix rows. Out-of-bounds padding rows stay zero, matching the
        // historical element walk.
        let mut row_nnz = vec![0usize; n_blocks * BLOCK];
        let mut matrix_row_nnz = Vec::with_capacity(rows);
        for r in 0..rows {
            let (br, dr) = (r / BLOCK, r % BLOCK);
            let row = w.row(r);
            let mut row_total = 0usize;
            for bc in 0..grid_cols {
                let c0 = bc * BLOCK;
                let cmax = (c0 + BLOCK).min(cols);
                let count = row[c0..cmax].iter().filter(|&&v| v != 0.0).count();
                row_nnz[(br * grid_cols + bc) * BLOCK + dr] = count;
                row_total += count;
            }
            matrix_row_nnz.push(row_total);
        }

        // Pass 2: per-block aggregates over the packed counts.
        let mut nnz = Vec::with_capacity(n_blocks);
        let mut nonempty_rows = Vec::with_capacity(n_blocks);
        let mut dense_slots = Vec::with_capacity(n_blocks);
        let mut block_rows = Vec::with_capacity(n_blocks);
        let mut occupancy_hist = [0usize; BLOCK + 1];
        let mut total_nnz = 0usize;
        for (i, counts) in row_nnz.chunks_exact(BLOCK).enumerate() {
            let (br, bc) = (i / grid_cols, i % grid_cols);
            let block_nnz: usize = counts.iter().sum();
            nnz.push(block_nnz);
            nonempty_rows.push(counts.iter().filter(|&&c| c > 0).count());
            let h = BLOCK.min(rows - br * BLOCK);
            let w_ = BLOCK.min(cols - bc * BLOCK);
            block_rows.push(h);
            dense_slots.push(h * w_);
            occupancy_hist[block_nnz.div_ceil(BLOCK)] += 1;
            total_nnz += block_nnz;
        }

        // TBS metadata: blocks carry their sparsity dimension; everything
        // else is reduction-dimension by construction. The TBS block list
        // is indexed by the *TBS-config* grid width (which differs from
        // the plan's 8-wide grid when the pattern's M ≠ 8), preserving the
        // historical lookup exactly.
        let mut independent_dim = vec![false; n_blocks];
        if let Some(t) = layer.tbs() {
            let blocks = t.blocks();
            let gc = t.mask().cols().div_ceil(t.config().m);
            for (i, flag) in independent_dim.iter_mut().enumerate() {
                let (br, bc) = (i / grid_cols, i % grid_cols);
                *flag = blocks
                    .get(br * gc + bc)
                    .map(|b| b.dim == SparsityDim::Independent)
                    .unwrap_or(false);
            }
        }

        BlockPlan {
            grid_rows,
            grid_cols,
            rows,
            cols,
            row_nnz,
            nnz,
            nonempty_rows,
            independent_dim,
            dense_slots,
            block_rows,
            matrix_row_nnz,
            occupancy_hist,
            total_nnz,
        }
    }

    /// Number of blocks in the plan.
    pub fn len(&self) -> usize {
        self.nnz.len()
    }

    /// Whether the plan covers no blocks.
    pub fn is_empty(&self) -> bool {
        self.nnz.is_empty()
    }

    /// Block-grid shape `(grid_rows, grid_cols)`.
    pub fn grid(&self) -> (usize, usize) {
        (self.grid_rows, self.grid_cols)
    }

    /// Sampled matrix shape `(rows, cols)` the plan was built from.
    pub fn sampled_shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Per-row non-zero counts of block `i` (8 packed counts).
    pub fn row_nnz(&self, i: usize) -> &[usize; BLOCK] {
        self.row_nnz[i * BLOCK..(i + 1) * BLOCK]
            .try_into()
            // tbstc-lint: allow(panic-surface) — the slice is BLOCK long by construction
            .expect("chunk is exactly BLOCK long")
    }

    /// Per-block non-zero totals.
    pub fn nnz(&self) -> &[usize] {
        &self.nnz
    }

    /// Per-block non-empty row counts.
    pub fn nonempty_rows(&self) -> &[usize] {
        &self.nonempty_rows
    }

    /// Per-block independent-dimension flags (TBS metadata).
    pub fn independent_dim(&self) -> &[bool] {
        &self.independent_dim
    }

    /// Per-block dense MAC slots (edge-clipped geometry).
    pub fn dense_slots(&self) -> &[usize] {
        &self.dense_slots
    }

    /// Per-block clipped heights.
    pub fn block_rows(&self) -> &[usize] {
        &self.block_rows
    }

    /// Per-matrix-row non-zero totals of the sampled weights.
    pub fn matrix_row_nnz(&self) -> &[usize] {
        &self.matrix_row_nnz
    }

    /// Total non-zeros of the sampled weights (`Σ nnz`).
    pub fn total_nnz(&self) -> usize {
        self.total_nnz
    }

    /// Occupancy-class histogram: entry `c` counts blocks whose non-zeros
    /// need `c` 8-wide issue slots (`ceil(nnz / 8)`), from empty (0) to
    /// dense (8).
    pub fn occupancy_histogram(&self) -> &[usize; BLOCK + 1] {
        &self.occupancy_hist
    }

    /// Reassembles the historical per-block [`BlockStats`] for block `i`
    /// — the scalar-pricing view used by `ArchModel::block_work` and the
    /// batch-vs-scalar parity tests.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn stats(&self, i: usize) -> BlockStats {
        BlockStats {
            row_nnz: *self.row_nnz(i),
            nnz: self.nnz[i],
            nonempty_rows: self.nonempty_rows[i],
            independent_dim: self.independent_dim[i],
            dense_slots: self.dense_slots[i],
            block_rows: self.block_rows[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Arch;
    use crate::config::HwConfig;
    use tbstc_models::LayerShape;

    fn layer(m: usize, k: usize, target: f64) -> SparseLayer {
        let shape = LayerShape {
            name: "plan-test".into(),
            m,
            k,
            n: 32,
            repeats: 1,
            prunable: true,
        };
        crate::LayerSim::new(&shape)
            .arch(Arch::TbStc)
            .sparsity(target)
            .seed(9)
            .build(&HwConfig::paper_default())
    }

    #[test]
    fn plan_matches_element_walk() {
        for (m, k) in [(64, 64), (20, 28), (33, 40)] {
            let l = layer(m, k, 0.6);
            let plan = BlockPlan::build(&l);
            let w = l.sampled();
            let (rows, cols) = w.shape();
            assert_eq!(plan.grid(), (rows.div_ceil(8), cols.div_ceil(8)));
            for i in 0..plan.len() {
                let (br, bc) = (i / plan.grid().1, i % plan.grid().1);
                let s = plan.stats(i);
                let mut expect = [0usize; 8];
                for (dr, cnt) in expect.iter_mut().enumerate() {
                    for dc in 0..8 {
                        if let Some(v) = w.get(br * 8 + dr, bc * 8 + dc) {
                            if v != 0.0 {
                                *cnt += 1;
                            }
                        }
                    }
                }
                assert_eq!(s.row_nnz, expect, "block {i} of {m}x{k}");
                assert_eq!(s.nnz, expect.iter().sum::<usize>());
                assert_eq!(s.nonempty_rows, expect.iter().filter(|&&c| c > 0).count());
            }
        }
    }

    #[test]
    fn totals_and_histogram_are_consistent() {
        let l = layer(64, 64, 0.75);
        let plan = BlockPlan::build(&l);
        assert_eq!(plan.total_nnz(), l.sampled().count_nonzeros());
        assert_eq!(plan.total_nnz(), plan.nnz().iter().sum::<usize>());
        assert_eq!(
            plan.total_nnz(),
            plan.matrix_row_nnz().iter().sum::<usize>()
        );
        assert_eq!(plan.occupancy_histogram().iter().sum::<usize>(), plan.len());
        for (i, &n) in plan.nnz().iter().enumerate() {
            assert!(plan.occupancy_histogram()[n.div_ceil(8)] > 0, "block {i}");
        }
    }

    #[test]
    fn independent_dim_mirrors_tbs_metadata() {
        let l = layer(64, 64, 0.75);
        let plan = BlockPlan::build(&l);
        let tbs = l.tbs().expect("TBS layer");
        let gc = tbs.mask().cols().div_ceil(tbs.config().m);
        for i in 0..plan.len() {
            let (br, bc) = (i / plan.grid().1, i % plan.grid().1);
            let expect = tbs
                .blocks()
                .get(br * gc + bc)
                .map(|b| b.dim == SparsityDim::Independent)
                .unwrap_or(false);
            assert_eq!(plan.independent_dim()[i], expect, "block {i}");
        }
        assert!(
            plan.independent_dim().iter().any(|&f| f),
            "some independent"
        );
    }
}
