//! Cycle-level performance simulator for TB-STC and all paper baselines.
//!
//! This crate is the reproduction of the paper's "cycle-level performance
//! simulator to model the hardware behavior and evaluate execution cycles"
//! (§VII-A1), extended with the energy hooks (Sparseloop-lite) so that it
//! also produces EDP.
//!
//! The simulated architectures (§VII-A2):
//!
//! | [`Arch`] | Pattern executed | Key constraint modelled |
//! |---|---|---|
//! | `Tc` | dense | full MACs |
//! | `Stc` | 4:8 tile | density floor at 50 % regardless of target |
//! | `Vegeta` | RS-V | SIMD lockstep across co-scheduled rows |
//! | `Highlight` | RS-H | density ladder rounds *up* off-ladder targets |
//! | `RmStc` | unstructured | nnz-proportional + gather/union power |
//! | `TbStc` | TBS | DDC + hierarchical sparsity-aware scheduling |
//! | `DvpeFan` | TBS | SIGMA's element-level FAN instead (ablation) |
//! | `Sgcn` | unstructured | few lanes, 256 GB/s, per-row overhead |
//!
//! The flow: describe a single-layer simulation with [`builder::LayerSim`]
//! (shape + architecture + sparsity + seed; large layers are sampled and
//! results scaled — see `SparseLayer::scale`), then
//! [`builder::LayerSim::run`] (or [`pipeline::simulate_layer`] on a
//! pre-built [`layer::SparseLayer`]) produces a [`result::LayerResult`]
//! with cycles, a phase breakdown, utilizations and energy.
//!
//! # Examples
//!
//! ```
//! use tbstc_models::bert_base;
//! use tbstc_sim::{Arch, HwConfig, LayerSim};
//!
//! let cfg = HwConfig::paper_default();
//! let layer = &bert_base(128).layers[0];
//! let res = LayerSim::new(layer).arch(Arch::TbStc).sparsity(0.75).seed(42).run(&cfg);
//! assert!(res.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod archs;
pub mod builder;
pub mod compute;
pub mod config;
pub mod dvpe;
pub mod layer;
pub mod mbd;
pub mod memory;
pub mod pipeline;
pub mod plan;
pub mod result;
pub mod sched;
pub mod schedunit;
pub mod spec;

pub use arch::{Arch, ArchId, ParseArchError};
pub use archs::{ArchModel, REGISTRY};
pub use builder::LayerSim;
pub use config::HwConfig;
pub use layer::SparseLayer;
pub use pipeline::{
    simulate_layer, simulate_layer_on, simulate_layer_with, simulate_model, simulate_model_on,
    SimOptions,
};
pub use plan::BlockPlan;
pub use result::{CycleBreakdown, LayerResult, ModelResult};
pub use spec::{
    ArchSpec, CodecSpec, CustomArch, Dataflow, DatapathKind, DenseInfoPolicy, SlotTerm,
};
