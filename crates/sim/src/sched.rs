//! Hierarchical sparsity-aware scheduling (paper §VI-B, Fig. 11).
//!
//! Two levels:
//!
//! * **Inter-block** (Fig. 11(a,b)): a scheduling unit between the on-chip
//!   buffer and the PEs dispatches blocks to the least-loaded PE and
//!   merges partial lane slots of consecutive blocks, so PE time is
//!   proportional to total work instead of per-block ceilings.
//! * **Intra-block** (Fig. 11(c,d)): within an independent-dimension
//!   block, the elements of different rows are concatenated across lanes
//!   (handled by the reduction nodes + alternate unit), so a block costs
//!   `ceil(nnz / lane_width)` cycles instead of one cycle per non-empty
//!   row.
//!
//! Both levels have naive counterparts used by the Fig. 16(b) ablation.
//!
//! Tasks are `(block, activation-column)` pairs: the same block stream
//! repeats for every column group, and the hardware spreads those
//! repetitions over PEs, so [`schedule_stream`] schedules the expanded
//! task list.

/// How blocks are placed onto PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterBlockPolicy {
    /// Direct mapping: task `i` goes to PE `i mod P`, each block occupies
    /// whole cycles (`ceil(slots / width)`), no merging across blocks.
    Direct,
    /// Sparsity-aware: least-loaded dispatch with slot merging across
    /// consecutive blocks (Fig. 11(b)).
    SparsityAware,
}

/// How a block's lanes are packed within a PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntraBlockPolicy {
    /// One issue per non-empty computation row (Fig. 11(c) naive).
    Naive,
    /// Rows concatenated across lanes: `ceil(nnz / width)` (Fig. 11(c,d)).
    Balanced,
}

/// Per-block cost in *lane-slots* (MAC slots) for one activation column,
/// plus the row-occupancy data the intra-block policy needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockWork {
    /// Total MAC slots the block needs (non-zeros, or padded slots for
    /// structurally constrained architectures).
    pub slots: usize,
    /// Non-empty computation-format rows (for the naive intra policy).
    pub nonempty_rows: usize,
    /// Whether the block's N:M runs along the independent dimension.
    /// Only independent-dimension blocks scatter their elements across
    /// computation rows, so only they pay the per-row cost under the
    /// naive intra policy (Fig. 11(c)); reduction-dimension blocks pack
    /// rows natively even without the alternate unit.
    pub independent_dim: bool,
}

/// Cycles one PE needs for one block under an intra-block policy, with
/// `width` lanes.
pub fn intra_block_cycles(work: &BlockWork, policy: IntraBlockPolicy, width: usize) -> u64 {
    match policy {
        IntraBlockPolicy::Naive if work.independent_dim => {
            work.nonempty_rows.max(usize::from(work.slots > 0)) as u64
        }
        _ => (work.slots as u64).div_ceil(width as u64),
    }
}

/// Schedules the `(block × column)` task stream of a layer onto the PE
/// array and returns the cycles until the slowest PE finishes.
///
/// `blocks` is the per-block work of one activation column; the stream
/// repeats `cols` times.
///
/// # Panics
///
/// Panics when `pes` or `width` is zero.
pub fn schedule_stream(
    blocks: &[BlockWork],
    cols: usize,
    pes: usize,
    width: usize,
    inter: InterBlockPolicy,
    intra: IntraBlockPolicy,
) -> u64 {
    assert!(pes > 0 && width > 0, "need PEs and lanes");
    if blocks.is_empty() || cols == 0 {
        return 0;
    }
    match inter {
        InterBlockPolicy::Direct => {
            // Round-robin over the expanded task list; whole cycles per
            // block, no cross-block merging. One pass over the blocks
            // repeated `cols` times is equivalent to accumulating each
            // block's cost into PE (i + c·B) mod P. Per-block cycles are
            // column-invariant, so compute them once and replay.
            let costs: Vec<u64> = blocks
                .iter()
                .map(|w| intra_block_cycles(w, intra, width))
                .collect();
            let mut load = vec![0u64; pes];
            for pass in 0..cols.min(pes) {
                // Column tiles rotate across PEs (the output-stationary
                // mapping shifts by one per column group), so simulate at
                // most `pes` distinct passes then scale.
                let mut p = pass;
                for &c in &costs {
                    load[p] += c;
                    p += 1;
                    if p == pes {
                        p = 0;
                    }
                }
            }
            let passes = cols.min(pes) as u64;
            let max = load.into_iter().max().unwrap_or(0);
            // Remaining columns repeat the same balanced pattern.
            (max as f64 * cols as f64 / passes as f64).ceil() as u64
        }
        InterBlockPolicy::SparsityAware => {
            // Least-loaded dispatch with slot merging: a PE that drains
            // early takes the next (block, column) task from the queue, so
            // the scheduler balances across the whole expanded stream and
            // each PE's time is ceil(sum of its slots / width).
            //
            // Implementation: a flat array min-heap over the fused key
            // `load · P + pe`. Because `pe < P`, fused-key order is exactly
            // lexicographic `(load, pe)` order — the same tie-break the
            // historical `BinaryHeap<Reverse<(u64, usize)>>` used — and all
            // keys are distinct, so the selected PE is identical at every
            // step. Loads stay far below 2^56 for any simulated layer, so
            // the fused product cannot overflow. Per-task add is
            // column-invariant (precomputed once); a zero add re-inserts an
            // unchanged key, so those tasks are skipped outright; each real
            // task is one root replacement (single sift-down) instead of a
            // pop + push pair.
            let pes64 = pes as u64;
            let adds: Vec<u64> = blocks
                .iter()
                .map(|w| {
                    let add = match intra {
                        IntraBlockPolicy::Balanced => w.slots as u64,
                        IntraBlockPolicy::Naive => {
                            intra_block_cycles(w, intra, width) * width as u64
                        }
                    };
                    add * pes64
                })
                .collect();
            let mut heap: Vec<u64> = (0..pes64).collect();
            for _ in 0..cols {
                for &add in &adds {
                    if add == 0 {
                        continue;
                    }
                    let key = heap[0] + add;
                    let mut i = 0usize;
                    loop {
                        let left = 2 * i + 1;
                        if left >= pes {
                            break;
                        }
                        let right = left + 1;
                        let child = if right < pes && heap[right] < heap[left] {
                            right
                        } else {
                            left
                        };
                        if heap[child] >= key {
                            break;
                        }
                        heap[i] = heap[child];
                        i = child;
                    }
                    heap[i] = key;
                }
            }
            let max_slots = heap.into_iter().map(|k| k / pes64).max().unwrap_or(0);
            max_slots.div_ceil(width as u64)
        }
    }
}

/// Compute utilization: useful slots over issued lane-cycles.
pub fn utilization(useful_slots: u64, cycles: u64, pes: usize, width: usize) -> f64 {
    if cycles == 0 {
        return 1.0;
    }
    useful_slots as f64 / (cycles as f64 * (pes * width) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(slots: usize, rows: usize) -> BlockWork {
        // Tests model independent-dimension blocks (the interesting case
        // for the naive intra policy).
        BlockWork {
            slots,
            nonempty_rows: rows,
            independent_dim: true,
        }
    }

    #[test]
    fn fig11a_example() {
        // Paper Fig. 11(a): merging low-occupancy blocks converts per-block
        // ceilings into work-proportional time. Blocks {8,16,8,4,4} = 40
        // slots on one 8-lane PE: scheduled = 5 cycles; naive pays per row.
        let blocks = vec![work(8, 8), work(16, 8), work(8, 8), work(4, 4), work(4, 4)];
        let naive = schedule_stream(
            &blocks,
            1,
            1,
            8,
            InterBlockPolicy::Direct,
            IntraBlockPolicy::Naive,
        );
        let smart = schedule_stream(
            &blocks,
            1,
            1,
            8,
            InterBlockPolicy::SparsityAware,
            IntraBlockPolicy::Balanced,
        );
        assert_eq!(smart, 5, "total 40 slots / 8 lanes");
        assert!(naive > smart, "naive {naive} vs scheduled {smart}");
    }

    #[test]
    fn balanced_intra_is_ceil_of_nnz() {
        assert_eq!(
            intra_block_cycles(&work(9, 5), IntraBlockPolicy::Balanced, 8),
            2
        );
        assert_eq!(
            intra_block_cycles(&work(8, 8), IntraBlockPolicy::Balanced, 8),
            1
        );
        assert_eq!(
            intra_block_cycles(&work(0, 0), IntraBlockPolicy::Balanced, 8),
            0
        );
    }

    #[test]
    fn naive_intra_pays_per_row() {
        // Fig. 11(c): rows {4,1,2,1} = 8 slots. Balanced: 1 cycle;
        // naive: 4 cycles.
        let w = work(8, 4);
        assert_eq!(intra_block_cycles(&w, IntraBlockPolicy::Naive, 8), 4);
        assert_eq!(intra_block_cycles(&w, IntraBlockPolicy::Balanced, 8), 1);
    }

    #[test]
    fn empty_stream_is_free() {
        assert_eq!(
            schedule_stream(
                &[],
                4,
                4,
                8,
                InterBlockPolicy::SparsityAware,
                IntraBlockPolicy::Balanced
            ),
            0
        );
        assert_eq!(
            schedule_stream(
                &[work(8, 8)],
                0,
                4,
                8,
                InterBlockPolicy::Direct,
                IntraBlockPolicy::Balanced
            ),
            0
        );
    }

    #[test]
    fn sparsity_aware_approaches_work_lower_bound() {
        // Heterogeneous blocks over many PEs: scheduled time should be
        // within ~20% of total_slots / (pes × width).
        let blocks: Vec<BlockWork> = (0..256)
            .map(|i| work([0, 8, 16, 32, 64][i % 5], 8))
            .collect();
        let total: u64 = blocks.iter().map(|b| b.slots as u64).sum();
        let cycles = schedule_stream(
            &blocks,
            64,
            128,
            8,
            InterBlockPolicy::SparsityAware,
            IntraBlockPolicy::Balanced,
        );
        let bound = (total * 64).div_ceil(128 * 8);
        assert!(cycles >= bound);
        assert!(
            cycles as f64 <= bound as f64 * 1.2,
            "{cycles} vs bound {bound}"
        );
    }

    #[test]
    fn direct_mapping_suffers_from_heterogeneity() {
        let blocks: Vec<BlockWork> = (0..256)
            .map(|i| work([0, 8, 16, 32, 64][i % 5], 8))
            .collect();
        let smart = schedule_stream(
            &blocks,
            64,
            128,
            8,
            InterBlockPolicy::SparsityAware,
            IntraBlockPolicy::Balanced,
        );
        let direct = schedule_stream(
            &blocks,
            64,
            128,
            8,
            InterBlockPolicy::Direct,
            IntraBlockPolicy::Balanced,
        );
        // Rotation spreads most of the imbalance across columns; the
        // per-block ceiling still makes direct no faster than merged.
        assert!(direct >= smart, "direct {direct} vs scheduled {smart}");
        // The merged schedule is within a whisker of the work lower bound,
        // which direct's per-block ceilings cannot reach on heterogeneous
        // blocks: check direct wastes at least the ceiling slack.
        let total: u64 = blocks.iter().map(|b| b.slots as u64).sum();
        let bound = (total * 64).div_ceil(128 * 8);
        assert!(
            smart <= bound + bound / 10,
            "smart {smart} vs bound {bound}"
        );
    }

    #[test]
    fn scheduled_utilization_improvement_matches_paper_scale() {
        // A TBS-like mix of block occupancies. The paper reports a 1.57×
        // utilization gain from hierarchical scheduling (§VII-E2).
        let mut blocks = Vec::new();
        for i in 0..256 {
            let (slots, rows) = match i % 5 {
                0 => (0, 0),
                1 => (8, 6),
                2 => (16, 8),
                3 => (32, 8),
                _ => (64, 8),
            };
            blocks.push(work(slots, rows));
        }
        let useful: u64 = blocks.iter().map(|b| b.slots as u64).sum::<u64>() * 16;
        let naive_cycles = schedule_stream(
            &blocks,
            16,
            16,
            8,
            InterBlockPolicy::Direct,
            IntraBlockPolicy::Naive,
        );
        let smart_cycles = schedule_stream(
            &blocks,
            16,
            16,
            8,
            InterBlockPolicy::SparsityAware,
            IntraBlockPolicy::Balanced,
        );
        let u_naive = utilization(useful, naive_cycles, 16, 8);
        let u_smart = utilization(useful, smart_cycles, 16, 8);
        let gain = u_smart / u_naive;
        assert!(
            (1.2..2.4).contains(&gain),
            "utilization gain {gain} (naive {u_naive:.3}, smart {u_smart:.3})"
        );
    }

    #[test]
    fn utilization_bounds() {
        assert_eq!(utilization(0, 0, 4, 8), 1.0);
        let u = utilization(32, 1, 4, 8);
        assert!((u - 1.0).abs() < 1e-12);
    }

    #[test]
    fn column_scaling_is_linear() {
        let blocks: Vec<BlockWork> = (0..64).map(|i| work(8 + i % 16, 8)).collect();
        let one = schedule_stream(
            &blocks,
            1,
            16,
            8,
            InterBlockPolicy::SparsityAware,
            IntraBlockPolicy::Balanced,
        );
        let many = schedule_stream(
            &blocks,
            10,
            16,
            8,
            InterBlockPolicy::SparsityAware,
            IntraBlockPolicy::Balanced,
        );
        // Cross-column balancing can make the long run slightly cheaper
        // than 10 independent columns, never more expensive.
        assert!(many >= one * 7 && many <= one * 11, "one {one} many {many}");
    }
}
