//! Sparse-layer construction: from a workload shape to the pruned weights
//! the simulator walks.
//!
//! Real layers can be enormous (OPT-6.7B's fc1 is 4096 × 16384). The
//! simulator's per-block models only need the *block-statistics* of the
//! pruned weights, which are stationary across a layer, so large layers
//! are built at a sampled size and all extensive results (cycles, traffic,
//! MACs, energy) are scaled back up by the exact element-count ratio. The
//! sampled weights use the block-structured generator, which reproduces
//! the local row/column heterogeneity of trained weights (see
//! `MatrixRng::block_structured_weights`).

use tbstc_matrix::rng::MatrixRng;
use tbstc_matrix::Matrix;
use tbstc_models::LayerShape;
use tbstc_sparsity::pattern::{paper_pattern, TileNm};
use tbstc_sparsity::{Mask, Pattern, PatternKind, TbsConfig, TbsPattern};

use crate::arch::Arch;
use crate::config::HwConfig;

/// A pruned layer ready for simulation: sampled weights + pattern
/// metadata + scale factors back to the real size.
#[derive(Debug, Clone)]
pub struct SparseLayer {
    /// Layer name (from the workload).
    pub name: String,
    /// Real weight rows (independent dim).
    pub m: usize,
    /// Real weight cols (reduction dim).
    pub k: usize,
    /// Real activation columns.
    pub n: usize,
    /// The sparsity target requested.
    pub target: f64,
    /// The pattern that produced the mask.
    pub pattern: PatternKind,
    /// Sampled, pruned weights (`sm × sk`).
    sampled: Matrix,
    /// TBS metadata when `pattern == Tbs` (needed for DDC and the codec).
    tbs: Option<TbsPattern>,
    /// Sampled B-column count used by compute models.
    pub sn: usize,
}

impl SparseLayer {
    /// The single construction path behind [`crate::LayerSim`] (and the
    /// deprecated `build*` shims): prunes `shape` with `pattern` at
    /// `target` sparsity, deterministically from `seed`, sampling under
    /// the limits in `cfg`. A custom `tbs_cfg` switches block sizing to
    /// the Fig. 15(a) sensitivity path.
    ///
    /// # Panics
    ///
    /// Panics when `target` is outside `[0, 1]` or `tbs_cfg` is invalid.
    pub(crate) fn assemble(
        shape: &LayerShape,
        pattern: PatternKind,
        target: f64,
        seed: u64,
        cfg: &HwConfig,
        tbs_cfg: Option<&TbsConfig>,
    ) -> Self {
        assert!((0.0..=1.0).contains(&target), "target sparsity in [0, 1]");
        // A custom TBS config sizes the sample (and the weight generator's
        // block granularity) by its own block dimension.
        let block = tbs_cfg.map_or(8, |t| t.m);
        let sm = shape.m.min(cfg.sample_dim).max(block);
        let sk = shape.k.min(cfg.sample_dim).max(block);
        let sn = shape.n.min(cfg.sample_cols).max(1);
        let mut rng = MatrixRng::seed_from(seed ^ fxhash(&shape.name));
        let weights = rng.block_structured_weights(sm, sk, block);

        let (pattern, mask, tbs): (PatternKind, Mask, Option<TbsPattern>) = match (pattern, tbs_cfg)
        {
            (_, Some(t)) => {
                let p = TbsPattern::sparsify(&weights, target, t);
                (PatternKind::Tbs, p.mask().clone(), Some(p))
            }
            (PatternKind::Tbs, None) => {
                let p = TbsPattern::sparsify(&weights, target, &TbsConfig::paper_default());
                (pattern, p.mask().clone(), Some(p))
            }
            (PatternKind::TileNm, None) => {
                // NVIDIA STC hardware supports exactly 2:4/4:8 — its
                // metadata format cannot express other ratios, so the
                // pattern is projected at 50 % regardless of the target
                // (paper Table I footnote and Fig. 12 caption).
                (pattern, TileNm::new(4, 8).project(&weights, 0.5), None)
            }
            (other, None) => (other, paper_pattern(other).project(&weights, target), None),
        };

        SparseLayer {
            name: shape.name.clone(),
            m: shape.m,
            k: shape.k,
            n: shape.n,
            target,
            pattern,
            sampled: mask.apply(&weights),
            tbs,
            sn,
        }
    }

    /// Builds a sparse layer for `shape` pruned with `pattern` at `target`
    /// sparsity, deterministically from `seed`.
    #[deprecated(
        since = "0.2.0",
        note = "use `LayerSim::new(shape).pattern(p).sparsity(s).seed(n).build(&HwConfig::paper_default())`"
    )]
    pub fn build(shape: &LayerShape, pattern: PatternKind, target: f64, seed: u64) -> Self {
        Self::assemble(
            shape,
            pattern,
            target,
            seed,
            &HwConfig::paper_default(),
            None,
        )
    }

    /// Builds with explicit sampling limits from `cfg`.
    ///
    /// # Panics
    ///
    /// Panics when `target` is outside `[0, 1]`.
    #[deprecated(
        since = "0.2.0",
        note = "use `LayerSim::new(shape).pattern(p).sparsity(s).seed(n).build(cfg)`"
    )]
    pub fn build_with(
        shape: &LayerShape,
        pattern: PatternKind,
        target: f64,
        seed: u64,
        cfg: &HwConfig,
    ) -> Self {
        Self::assemble(shape, pattern, target, seed, cfg, None)
    }

    /// Builds the layer for an architecture's native pattern.
    #[deprecated(
        since = "0.2.0",
        note = "use `LayerSim::new(shape).arch(a).sparsity(s).seed(n).build(cfg)`"
    )]
    pub fn build_for_arch(
        shape: &LayerShape,
        arch: Arch,
        target: f64,
        seed: u64,
        cfg: &HwConfig,
    ) -> Self {
        Self::assemble(shape, arch.native_pattern(), target, seed, cfg, None)
    }

    /// Builds a TBS layer with a custom block-size configuration
    /// (Fig. 15(a) block-size sensitivity).
    ///
    /// # Panics
    ///
    /// Panics when `target` is outside `[0, 1]` or `tbs_cfg` is invalid.
    #[deprecated(
        since = "0.2.0",
        note = "use `LayerSim::new(shape).sparsity(s).seed(n).tbs_config(c).build(cfg)`"
    )]
    pub fn build_tbs_with_config(
        shape: &LayerShape,
        target: f64,
        seed: u64,
        cfg: &HwConfig,
        tbs_cfg: &TbsConfig,
    ) -> Self {
        Self::assemble(shape, PatternKind::Tbs, target, seed, cfg, Some(tbs_cfg))
    }

    /// The sampled pruned weight matrix.
    pub fn sampled(&self) -> &Matrix {
        &self.sampled
    }

    /// TBS metadata (present only for the TBS pattern).
    pub fn tbs(&self) -> Option<&TbsPattern> {
        self.tbs.as_ref()
    }

    /// Sampled rows.
    pub fn sm(&self) -> usize {
        self.sampled.rows()
    }

    /// Sampled reduction columns.
    pub fn sk(&self) -> usize {
        self.sampled.cols()
    }

    /// Factor scaling sampled weight-extensive quantities (block walks,
    /// A-traffic) to the real layer.
    pub fn weight_scale(&self) -> f64 {
        (self.m as f64 * self.k as f64) / (self.sm() as f64 * self.sk() as f64)
    }

    /// Factor scaling sampled activation-extensive quantities to the real
    /// layer.
    pub fn col_scale(&self) -> f64 {
        self.n as f64 / self.sn as f64
    }

    /// The sparsity the projection actually achieved on the sample.
    pub fn actual_sparsity(&self) -> f64 {
        self.sampled.sparsity()
    }

    /// Real (scaled) non-zero weight count.
    pub fn real_nnz(&self) -> f64 {
        self.sampled.count_nonzeros() as f64 * self.weight_scale()
    }

    /// Real useful MACs: one per non-zero weight per activation column.
    pub fn real_useful_macs(&self) -> f64 {
        self.real_nnz() * self.n as f64
    }
}

/// A tiny deterministic string hash so two layers with the same seed but
/// different names get different weights.
fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LayerSim;
    use tbstc_models::bert_base;

    fn shape() -> LayerShape {
        bert_base(128).layers[0].clone()
    }

    fn build(shape: &LayerShape, pattern: PatternKind, target: f64, seed: u64) -> SparseLayer {
        LayerSim::new(shape)
            .pattern(pattern)
            .sparsity(target)
            .seed(seed)
            .build(&HwConfig::paper_default())
    }

    #[test]
    fn sampling_caps_dimensions() {
        let l = build(&shape(), PatternKind::Tbs, 0.5, 1);
        assert_eq!(l.sm(), 128);
        assert_eq!(l.sk(), 128);
        assert_eq!(l.m, 768);
        assert!((l.weight_scale() - 36.0).abs() < 1e-9); // (768/128)²
    }

    #[test]
    fn small_layers_not_scaled() {
        let small = LayerShape {
            name: "tiny".into(),
            m: 64,
            k: 64,
            n: 32,
            repeats: 1,
            prunable: true,
        };
        let l = build(&small, PatternKind::Unstructured, 0.5, 2);
        assert_eq!(l.weight_scale(), 1.0);
        assert_eq!(l.col_scale(), 1.0);
    }

    #[test]
    fn target_sparsity_achieved() {
        for kind in [
            PatternKind::Unstructured,
            PatternKind::Tbs,
            PatternKind::RowWiseVegeta,
        ] {
            let l = build(&shape(), kind, 0.75, 3);
            assert!(
                (l.actual_sparsity() - 0.75).abs() < 0.06,
                "{kind}: {}",
                l.actual_sparsity()
            );
        }
    }

    #[test]
    fn stc_pinned_to_half_density() {
        // Target 0.875 but STC executes 4:8.
        let l = build(&shape(), PatternKind::TileNm, 0.875, 4);
        assert!((l.actual_sparsity() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tbs_layers_carry_metadata() {
        let l = build(&shape(), PatternKind::Tbs, 0.5, 5);
        assert!(l.tbs().is_some());
        let l2 = build(&shape(), PatternKind::Unstructured, 0.5, 5);
        assert!(l2.tbs().is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = build(&shape(), PatternKind::Tbs, 0.5, 7);
        let b = build(&shape(), PatternKind::Tbs, 0.5, 7);
        assert_eq!(a.sampled(), b.sampled());
    }

    #[test]
    fn different_layer_names_differ() {
        let mut s2 = shape();
        s2.name = "other".into();
        let a = build(&shape(), PatternKind::Tbs, 0.5, 7);
        let b = build(&s2, PatternKind::Tbs, 0.5, 7);
        assert_ne!(a.sampled(), b.sampled());
    }

    #[test]
    fn useful_macs_scale() {
        let l = build(&shape(), PatternKind::Unstructured, 0.5, 8);
        let expect = 768.0 * 768.0 * 0.5 * 128.0;
        let got = l.real_useful_macs();
        assert!((got / expect - 1.0).abs() < 0.05, "{got} vs {expect}");
    }
}
