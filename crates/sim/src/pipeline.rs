//! The layer pipeline: compute ∥ memory ∥ codec → cycles, energy, EDP.
//!
//! A layer executes as a pipeline (paper Fig. 14): weight/activation
//! streams feed the codec, which feeds the PE array. The critical path is
//! `max(compute, memory)`; codec conversion runs at the weight-fetch rate
//! and is hidden underneath, except for the pipeline fill and any
//! throughput shortfall, which are exposed.

use tbstc_energy::edp::EnergyBreakdown;
use tbstc_formats::{CodecStats, CodecUnit};
use tbstc_models::{LayerShape, Model};
use tbstc_sparsity::SparsityDim;

use crate::arch::Arch;
use crate::archs::ArchModel;
use crate::compute::{simulate_compute_on, SchedulePolicy};
use crate::config::HwConfig;
use crate::layer::SparseLayer;
use crate::memory::{simulate_memory_on, FormatOverride};
use crate::plan::BlockPlan;
use crate::result::{CycleBreakdown, LayerResult, ModelResult};

/// Elements the codec ingests per cycle: it is provisioned at twice the
/// 64 B/cycle weight-stream line rate (two packed 64 B words per cycle,
/// 16 queue-group slices of 4 — the Fig. 9 example shows one slice at
/// width 2), so conversion drains faster than fetch and stays hidden.
const CODEC_ELEMS_PER_CYCLE: u64 = 64;
/// Pipeline-fill latency of the codec at each layer start, cycles.
const CODEC_FILL_CYCLES: u64 = 8;

/// Simulation knobs for [`simulate_layer_with`].
///
/// `Default` (and [`SimOptions::native`]) leaves every knob on the
/// architecture's native behaviour; the ablation entry points override
/// one knob at a time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimOptions {
    /// Scheduling override; `None` resolves to the architecture's
    /// [`SchedulePolicy::native`] policy (Fig. 16(b) ablation).
    pub policy: Option<SchedulePolicy>,
    /// Storage-format override (Fig. 16(a) codec ablation, Fig. 15(b)
    /// quantization study).
    pub format: FormatOverride,
}

impl SimOptions {
    /// Native scheduling and format — what [`simulate_layer`] uses.
    pub fn native() -> Self {
        Self::default()
    }

    /// Native options with an explicit scheduling policy.
    pub fn with_policy(policy: SchedulePolicy) -> Self {
        SimOptions {
            policy: Some(policy),
            ..Self::default()
        }
    }

    /// Native options with an explicit storage format.
    pub fn with_format(format: FormatOverride) -> Self {
        SimOptions {
            format,
            ..Self::default()
        }
    }
}

/// Simulates one layer with explicit scheduling and format knobs (the
/// ablation entry point). Builds the layer's [`BlockPlan`] once and
/// shares it across the compute and memory models.
pub fn simulate_layer_with(
    arch: Arch,
    layer: &SparseLayer,
    cfg: &HwConfig,
    opts: &SimOptions,
) -> LayerResult {
    simulate_layer_on(arch.model(), layer, cfg, opts)
}

/// Simulates one layer against any [`ArchModel`] — a registry builtin or
/// a spec-interpreted [`crate::spec::CustomArch`]. The builtin entry
/// points all funnel here, so spec-driven architectures run the exact
/// same pipeline (and at the same batched speed).
pub fn simulate_layer_on(
    model: &dyn ArchModel,
    layer: &SparseLayer,
    cfg: &HwConfig,
    opts: &SimOptions,
) -> LayerResult {
    cfg.validate();
    let plan = BlockPlan::build(layer);
    let policy = opts.policy.unwrap_or_else(|| model.native_schedule());
    let fmt = opts.format;
    let mut comp = simulate_compute_on(model, layer, &plan, cfg, policy);
    if fmt == FormatOverride::Int8 {
        // Each FP16 multiplier lane executes two int8 MACs per cycle, so
        // int8 weights double compute throughput (Fig. 15(b) "Q+S").
        comp.cycles = comp.cycles.div_ceil(2);
    }
    let mem = simulate_memory_on(model, layer, &plan, cfg, fmt);
    let codec_total = codec_cycles(model, layer, fmt);

    let bottleneck = comp.cycles.max(mem.cycles);
    let codec_exposed = if codec_total == 0 {
        0
    } else {
        CODEC_FILL_CYCLES + codec_total.saturating_sub(bottleneck)
    };
    let codec_hidden = codec_total.min(bottleneck);
    let breakdown = CycleBreakdown {
        compute: comp.cycles,
        memory: mem.cycles,
        codec_hidden,
        codec_exposed,
    };
    let cycles = breakdown.total();

    let energy = EnergyBreakdown {
        macs: comp.issued_macs,
        buffer_bytes: mem.total_bytes() as u64,
        cycles,
        datapath_power_mw: model.datapath(cfg.pe).total_power_mw(),
        active_fraction: comp.utilization,
        dram_energy_pj: mem.energy_pj,
        mac_energy_scale: model.mac_energy_multiplier(),
    };

    LayerResult {
        name: layer.name.clone(),
        arch: model.id(),
        cycles,
        breakdown,
        useful_macs: comp.useful_macs,
        compute_utilization: comp.utilization,
        bandwidth_utilization: mem.a_bandwidth_utilization,
        traffic_bytes: mem.total_bytes(),
        energy_pj: energy.total_pj(),
    }
}

/// Simulates one layer with the architecture's native scheduling and
/// format.
pub fn simulate_layer(arch: Arch, layer: &SparseLayer, cfg: &HwConfig) -> LayerResult {
    simulate_layer_with(arch, layer, cfg, &SimOptions::native())
}

/// Simulates a whole model at one target sparsity (non-prunable layers run
/// dense). Layer repeats multiply into the totals.
pub fn simulate_model(
    arch: Arch,
    model: &Model,
    target: f64,
    seed: u64,
    cfg: &HwConfig,
) -> ModelResult {
    simulate_model_on(arch.model(), model, target, seed, cfg)
}

/// Simulates a whole model against any [`ArchModel`].
pub fn simulate_model_on(
    arch_model: &dyn ArchModel,
    model: &Model,
    target: f64,
    seed: u64,
    cfg: &HwConfig,
) -> ModelResult {
    let mut layers = Vec::with_capacity(model.layers.len());
    let mut total_cycles = 0u64;
    let mut total_energy = 0.0f64;
    for shape in &model.layers {
        let res = simulate_model_layer_on(arch_model, shape, target, seed, cfg);
        total_cycles += res.cycles * shape.repeats as u64;
        total_energy += res.energy_pj * shape.repeats as f64;
        layers.push(res);
    }
    ModelResult {
        arch: arch_model.id(),
        model: model.kind.to_string(),
        layers,
        total_cycles,
        total_energy_pj: total_energy,
    }
}

/// Simulates a single model layer, respecting `prunable`.
pub fn simulate_model_layer(
    arch: Arch,
    shape: &LayerShape,
    target: f64,
    seed: u64,
    cfg: &HwConfig,
) -> LayerResult {
    simulate_model_layer_on(arch.model(), shape, target, seed, cfg)
}

/// Simulates a single model layer against any [`ArchModel`].
pub fn simulate_model_layer_on(
    arch_model: &dyn ArchModel,
    shape: &LayerShape,
    target: f64,
    seed: u64,
    cfg: &HwConfig,
) -> LayerResult {
    let effective = if shape.prunable { target } else { 0.0 };
    let pattern = if shape.prunable {
        arch_model.native_pattern()
    } else {
        tbstc_sparsity::PatternKind::Dense
    };
    let layer = SparseLayer::assemble(shape, pattern, effective, seed, cfg, None);
    simulate_layer_on(arch_model, &layer, cfg, &SimOptions::native())
}

/// Conversion cycles the codec needs for the layer's weight stream
/// (scaled to real size). Only DDC-consuming architectures convert, and
/// only independent-dimension blocks need it (Fig. 9(a) vs 9(b)).
fn codec_cycles(model: &dyn ArchModel, layer: &SparseLayer, fmt: FormatOverride) -> u64 {
    if !model.consumes_ddc() || !matches!(fmt, FormatOverride::Native | FormatOverride::Int8) {
        return 0;
    }
    let Some(tbs) = layer.tbs() else { return 0 };
    // Count elements in independent-dimension blocks on the sample.
    let mask = tbs.mask();
    let m = tbs.config().m;
    let mut indep_elems = 0u64;
    for info in tbs.blocks() {
        if info.dim == SparsityDim::Independent {
            let (r0, c0) = info.coord.origin(m);
            indep_elems += mask.block_view(r0, c0, m, m).count_kept() as u64;
        }
    }
    let sampled = indep_elems.div_ceil(CODEC_ELEMS_PER_CYCLE);
    (sampled as f64 * layer.weight_scale()).ceil() as u64
}

/// Detailed codec statistics for one layer's sampled blocks (used by the
/// Fig. 14 analysis and the codec tests).
pub fn codec_stats(layer: &SparseLayer) -> CodecStats {
    let Some(tbs) = layer.tbs() else {
        return CodecStats::default();
    };
    let pruned = tbs.mask().apply(layer.sampled());
    let ddc = tbstc_formats::Ddc::encode(&pruned, tbs);
    let codec = CodecUnit::paper_default();
    let mut total = CodecStats::default();
    for block in ddc.blocks() {
        let (_, stats) = codec.convert_block(block);
        total.merge(&stats);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc_models::{bert_base, resnet50};

    fn cfg() -> HwConfig {
        HwConfig::paper_default()
    }

    fn bert_layer() -> LayerShape {
        bert_base(128).layers[0].clone()
    }

    fn run(arch: Arch, target: f64) -> LayerResult {
        crate::LayerSim::new(&bert_layer())
            .arch(arch)
            .sparsity(target)
            .seed(31)
            .run(&cfg())
    }

    #[test]
    fn layerwise_speedup_ordering_matches_fig12() {
        // At 75% sparsity: TB-STC ≥ RM-STC ≥ HighLight ≥ VEGETA ≥ STC ≥ TC
        // in speed (paper Fig. 12 ordering, allowing near-ties).
        let tb = run(Arch::TbStc, 0.75);
        let rm = run(Arch::RmStc, 0.75);
        let hl = run(Arch::Highlight, 0.75);
        let veg = run(Arch::Vegeta, 0.75);
        let stc = run(Arch::Stc, 0.75);
        let tc = run(Arch::Tc, 0.75);
        assert!(
            tb.cycles <= (rm.cycles as f64 * 1.1) as u64,
            "TB {} RM {}",
            tb.cycles,
            rm.cycles
        );
        // RM-STC and HighLight are close (paper: 1.06 vs 1.21); allow a
        // tie margin on this single layer/seed.
        assert!(
            rm.cycles <= (hl.cycles as f64 * 1.1) as u64,
            "RM {} HL {}",
            rm.cycles,
            hl.cycles
        );
        assert!(
            hl.cycles <= veg.cycles,
            "HL {} VEG {}",
            hl.cycles,
            veg.cycles
        );
        assert!(
            veg.cycles <= stc.cycles,
            "VEG {} STC {}",
            veg.cycles,
            stc.cycles
        );
        assert!(
            stc.cycles < tc.cycles,
            "STC {} TC {}",
            stc.cycles,
            tc.cycles
        );
    }

    #[test]
    fn tb_stc_beats_rm_stc_on_edp_but_not_speed() {
        // Paper §VII-C1: similar speed (1.06x) but 1.75x EDP gain.
        let tb = run(Arch::TbStc, 0.75);
        let rm = run(Arch::RmStc, 0.75);
        let speedup = tb.speedup_over(&rm);
        let edp = tb.edp_gain_over(&rm);
        assert!((0.9..1.4).contains(&speedup), "speedup {speedup}");
        assert!(edp > 1.2, "EDP gain {edp}");
        assert!(edp > speedup, "EDP gain comes from energy, not speed");
    }

    #[test]
    fn codec_mostly_hidden() {
        // Paper Fig. 14: conversion ≈3.57% of execution, hidden in the
        // pipeline.
        let sim = crate::LayerSim::new(&bert_layer())
            .arch(Arch::TbStc)
            .sparsity(0.75)
            .seed(32);
        let res = sim.run(&cfg());
        let share = res.breakdown.codec_share();
        assert!(share < 0.15, "codec share {share}");
        assert!(
            res.breakdown.codec_exposed < res.cycles / 20,
            "exposed {} of {}",
            res.breakdown.codec_exposed,
            res.cycles
        );
    }

    #[test]
    fn non_tbs_archs_have_no_codec() {
        let r = run(Arch::Vegeta, 0.75);
        assert_eq!(r.breakdown.codec_hidden + r.breakdown.codec_exposed, 0);
    }

    #[test]
    fn model_simulation_aggregates_repeats() {
        let model = bert_base(128);
        let res = simulate_model(Arch::TbStc, &model, 0.5, 33, &cfg());
        assert_eq!(res.layers.len(), model.layers.len());
        let layer_sum: u64 = res
            .layers
            .iter()
            .zip(&model.layers)
            .map(|(l, s)| l.cycles * s.repeats as u64)
            .sum();
        assert_eq!(res.total_cycles, layer_sum);
        assert!(res.total_energy_pj > 0.0);
    }

    #[test]
    fn dense_layers_stay_dense_in_models() {
        let model = resnet50(32);
        let res = simulate_model(Arch::TbStc, &model, 0.75, 34, &cfg());
        // The stem is not prunable: its useful MACs equal its dense MACs.
        let stem = &res.layers[0];
        let expect = model.layers[0].macs();
        assert!(
            (stem.useful_macs as f64 / expect as f64 - 1.0).abs() < 0.05,
            "stem {} vs {}",
            stem.useful_macs,
            expect
        );
    }

    #[test]
    fn end_to_end_tb_stc_wins_edp_at_iso_sparsity() {
        let model = bert_base(128);
        let tb = simulate_model(Arch::TbStc, &model, 0.75, 35, &cfg());
        for arch in [Arch::Stc, Arch::Vegeta, Arch::Highlight] {
            let base = simulate_model(arch, &model, 0.75, 35, &cfg());
            assert!(
                tb.edp_gain_over(&base) > 1.0,
                "{arch}: gain {}",
                tb.edp_gain_over(&base)
            );
        }
    }

    #[test]
    fn sgcn_wins_only_at_extreme_sparsity() {
        // Paper Fig. 15(d): SGCN overtakes TB-STC at ~95% sparsity but
        // loses across 30–90%.
        let gcn = tbstc_models::gcn_layer(1024, 128).layers[0].clone();
        let at = |arch: Arch, s: f64| {
            crate::LayerSim::new(&gcn)
                .arch(arch)
                .sparsity(s)
                .seed(36)
                .run(&cfg())
                .cycles
        };
        let mid_tb = at(Arch::TbStc, 0.6);
        let mid_sg = at(Arch::Sgcn, 0.6);
        assert!(
            mid_tb < mid_sg,
            "TB-STC wins mid-sparsity: {mid_tb} vs {mid_sg}"
        );
        let hi_tb = at(Arch::TbStc, 0.97);
        let hi_sg = at(Arch::Sgcn, 0.97);
        assert!(
            hi_sg < hi_tb,
            "SGCN wins extreme sparsity: {hi_sg} vs {hi_tb}"
        );
    }

    #[test]
    fn codec_stats_accumulate() {
        let layer = crate::LayerSim::new(&bert_layer())
            .arch(Arch::TbStc)
            .sparsity(0.5)
            .seed(37)
            .build(&cfg());
        let stats = codec_stats(&layer);
        assert!(stats.groups > 0);
        assert!(stats.total_cycles() > 0);
    }
}
