//! Hardware configuration shared by all simulated architectures.

use tbstc_dram::DramConfig;
use tbstc_energy::components::PeArrayShape;

/// The simulated hardware platform.
///
/// The paper keeps peak performance, on-chip memory capacity and off-chip
/// bandwidth identical across baselines (§VII-A1) — so all architectures
/// share one `HwConfig` and differ only in their datapath behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwConfig {
    /// PE-array shape (8 arrays × 16 DVPEs × 8 multipliers by default).
    pub pe: PeArrayShape,
    /// Core clock in GHz (1.0 in the paper; used only for reporting).
    pub clock_ghz: f64,
    /// Off-chip memory configuration (64 GB/s by default).
    pub dram: DramConfig,
    /// On-chip buffer capacity in KiB (for B-matrix reuse accounting).
    pub buffer_kib: usize,
    /// Rows/cols used when sampling very large layers (see
    /// [`crate::layer::SparseLayer::build`]).
    pub sample_dim: usize,
    /// B-columns used when sampling.
    pub sample_cols: usize,
}

impl HwConfig {
    /// The paper's setup.
    pub fn paper_default() -> Self {
        HwConfig {
            pe: PeArrayShape::paper_default(),
            clock_ghz: 1.0,
            dram: DramConfig::paper_default(),
            buffer_kib: 2048,
            sample_dim: 128,
            sample_cols: 64,
        }
    }

    /// Same platform with a different off-chip bandwidth (Fig. 15(c)).
    pub fn with_bandwidth_gbps(gbps: f64) -> Self {
        HwConfig {
            dram: DramConfig::with_bandwidth_gbps(gbps),
            ..Self::paper_default()
        }
    }

    /// Total multiplier lanes.
    pub fn lanes(&self) -> usize {
        self.pe.mults()
    }

    /// Lanes per DVPE (the SIMD width of one PE).
    pub fn lane_width(&self) -> usize {
        self.pe.mults_per_dvpe
    }

    /// Number of DVPEs.
    pub fn dvpes(&self) -> usize {
        self.pe.dvpes()
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics when any dimension is zero.
    pub fn validate(&self) {
        assert!(self.pe.mults() > 0, "need multipliers");
        assert!(self.sample_dim >= 8, "sample must cover at least one block");
        assert!(self.sample_cols > 0, "need at least one sampled column");
        self.dram.validate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section7() {
        let c = HwConfig::paper_default();
        assert_eq!(c.lanes(), 1024);
        assert_eq!(c.dvpes(), 128);
        assert_eq!(c.lane_width(), 8);
        assert_eq!(c.dram.bytes_per_cycle, 64.0);
        c.validate();
    }

    #[test]
    fn bandwidth_override() {
        let c = HwConfig::with_bandwidth_gbps(256.0);
        assert_eq!(c.dram.bytes_per_cycle, 256.0);
        assert_eq!(c.lanes(), 1024);
    }
}
