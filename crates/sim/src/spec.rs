//! The declarative architecture layer: accelerators as data.
//!
//! An [`ArchSpec`] is a small document — pattern constraint, dataflow
//! slot terms, codec choice, lanes, bandwidth and energy multipliers —
//! that [`CustomArch`] interprets as a full [`ArchModel`], batched
//! `block_works_batch` path included. Every registry builtin renders
//! itself as a spec via [`ArchModel::spec`], and the `spec_parity` tests
//! pin that interpreting the rendered spec reproduces the native module's
//! `LayerResult`s bit-for-bit. Serialization to/from canonical JSON lives
//! in the core crate (`tbstc::archspec`), which depends on this one.

use tbstc_energy::components::{self, DatapathCosts, PeArrayShape};
use tbstc_formats::{Csr, Sdc};
use tbstc_sparsity::PatternKind;

use crate::arch::ArchId;
use crate::archs::{
    ddc_or_dense_trace, grouped_sdc_trace, lockstep_slots, nnz_proportional_batch,
    ratio_grouped_slots, ArchModel, BlockStats, WeightTrace,
};
use crate::compute::SchedulePolicy;
use crate::layer::SparseLayer;
use crate::memory::FormatOverride;
use crate::plan::BlockPlan;
use crate::sched::BlockWork;

/// One term of a dataflow's slot expression. A block's base slot count is
/// the **max** over the spec's terms — structural constraints bind, they
/// don't add (VEGETA pays `max(lockstep, ratio-grouped)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotTerm {
    /// Every MAC slot of the (edge-clipped) block issues.
    Dense,
    /// One slot per non-zero.
    Nnz,
    /// Adjacent groups of `group` rows run in lockstep, each costing
    /// `group × max(row nnz)`.
    Lockstep {
        /// Rows per lockstep group (1–8).
        group: usize,
    },
    /// Rows sharing a non-zero count pack into common `width`-lane
    /// issues; distinct counts need separate issues.
    RatioGrouped {
        /// Lanes per issue (1–8).
        width: usize,
    },
}

impl SlotTerm {
    /// The term's slot count for one block.
    fn slots(self, b: &BlockStats) -> usize {
        match self {
            SlotTerm::Dense => b.dense_slots,
            SlotTerm::Nnz => b.nnz,
            SlotTerm::Lockstep { group } => lockstep_slots(&b.row_nnz, group),
            SlotTerm::RatioGrouped { width } => ratio_grouped_slots(&b.row_nnz, width),
        }
    }
}

/// A dataflow's slot cost: `ceil(max(terms) × multiplier / efficiency)`.
/// When both factors are exactly 1.0 the base count passes through
/// untouched — the bit-exactness contract the builtin specs rely on
/// (each native module applies at most one non-unit factor).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataflow {
    /// Slot terms, combined by max. Must be non-empty.
    pub terms: Vec<SlotTerm>,
    /// Slot overhead multiplier (e.g. HighLight's 1.06 metadata
    /// intersection, FAN's 1.12 pipeline occupancy). Must be ≥ 1.
    pub multiplier: f64,
    /// Packing efficiency divisor in `(0, 1]` (e.g. RM-STC's 0.94 merge
    /// bubbles, SGCN's 0.7 gather efficiency).
    pub efficiency: f64,
}

impl Dataflow {
    /// An nnz-proportional dataflow with no overhead factors.
    pub fn nnz() -> Dataflow {
        Dataflow {
            terms: vec![SlotTerm::Nnz],
            multiplier: 1.0,
            efficiency: 1.0,
        }
    }

    /// Whether both overhead factors are exactly 1.0 (slots pass through).
    fn is_unit(&self) -> bool {
        self.multiplier == 1.0 && self.efficiency == 1.0
    }

    /// Applies the overhead factors to a base slot count.
    fn scale(&self, base: usize) -> usize {
        if self.is_unit() {
            base
        } else {
            ((base as f64) * self.multiplier / self.efficiency).ceil() as usize
        }
    }

    /// The slot count for one block: scaled max over terms.
    fn slots(&self, b: &BlockStats) -> usize {
        let base = self
            .terms
            .iter()
            .map(|t| t.slots(b))
            .max()
            .unwrap_or_default();
        self.scale(base)
    }

    /// Whether a [`SlotTerm::Dense`] term is present — dense dataflows
    /// occupy every (clipped) block row, not just non-empty ones.
    fn has_dense_term(&self) -> bool {
        self.terms.contains(&SlotTerm::Dense)
    }
}

/// The weight-stream storage format the architecture consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecSpec {
    /// Uncompressed row-major rows, 2 bytes per element.
    DenseRows,
    /// Aligned N:M values + 2-bit position metadata (NVIDIA 4:8).
    AlignedNm,
    /// SDC padded per `group`-row window (VEGETA).
    GroupedSdc {
        /// Rows per alignment window (1–8).
        group: usize,
    },
    /// Whole-matrix-aligned SDC (HighLight).
    Sdc,
    /// Bitmap + packed values (RM-STC).
    Bitmap,
    /// DDC when the layer carries TBS metadata, dense rows otherwise
    /// (TB-STC and ablations).
    DdcOrDense,
    /// CSR stream with per-element indices (SGCN).
    Csr,
}

impl CodecSpec {
    /// The sampled weight-stream trace this codec emits.
    fn weight_trace(self, layer: &SparseLayer, plan: &BlockPlan) -> WeightTrace {
        match self {
            CodecSpec::DenseRows => {
                let w = layer.sampled();
                let row_bytes = w.cols() as u64 * 2;
                WeightTrace {
                    requests: (0..w.rows() as u64)
                        .map(|r| (r * row_bytes, row_bytes))
                        .collect(),
                    stored_bytes: row_bytes * w.rows() as u64,
                }
            }
            CodecSpec::AlignedNm => {
                let nnz = plan.total_nnz() as u64;
                WeightTrace::sequential(nnz * 2 + nnz / 4)
            }
            CodecSpec::GroupedSdc { group } => grouped_sdc_trace(plan.matrix_row_nnz(), group),
            CodecSpec::Sdc => {
                WeightTrace::from_access_trace(Sdc::encode(layer.sampled()).access_trace())
            }
            CodecSpec::Bitmap => {
                let (rows, cols) = plan.sampled_shape();
                let nnz = plan.total_nnz() as u64;
                let bitmap = ((rows * cols) as u64).div_ceil(8);
                WeightTrace::sequential(nnz * 2 + bitmap)
            }
            CodecSpec::DdcOrDense => ddc_or_dense_trace(layer),
            CodecSpec::Csr => {
                WeightTrace::from_access_trace(Csr::encode(layer.sampled()).streaming_trace())
            }
        }
    }
}

/// When the weight stream degenerates to a dense row stream, making the
/// full matrix the information content.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseInfoPolicy {
    /// Never (compressed formats).
    Never,
    /// Always (dense TC).
    Always,
    /// On layers without TBS metadata under the native format (TB-STC
    /// runs non-prunable layers dense).
    NonTbsNative,
}

/// The datapath cost inventory to price the design against — specs pick
/// from the calibrated Table III component lists rather than inventing
/// component energies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatapathKind {
    /// Plain dense Tensor Core.
    TensorCore,
    /// NVIDIA STC (2:4 mux selects).
    NvidiaStc,
    /// VEGETA's vertical SIMD with B-select.
    Vegeta,
    /// HighLight's hierarchical metadata decoders.
    Highlight,
    /// RM-STC's gather/union row-merge frontend.
    RmStc,
    /// TB-STC's DVPEs + adaptive codec.
    TbStc,
    /// TB-STC with SIGMA's FAN reduction (ablation).
    DvpeWithFan,
    /// SGCN's CSR frontend (RM-STC-class gather logic).
    Sgcn,
}

impl DatapathKind {
    /// Builds the component inventory for a PE-array shape.
    pub fn build(self, shape: PeArrayShape) -> DatapathCosts {
        match self {
            DatapathKind::TensorCore => components::tensor_core(shape),
            DatapathKind::NvidiaStc => components::nvidia_stc(shape),
            DatapathKind::Vegeta => components::vegeta(shape),
            DatapathKind::Highlight => components::highlight(shape),
            DatapathKind::RmStc => components::rm_stc(shape),
            DatapathKind::TbStc => components::tb_stc(shape),
            DatapathKind::DvpeWithFan => components::dvpe_with_fan(shape),
            DatapathKind::Sgcn => {
                let mut dp = components::rm_stc(shape);
                dp.name = "SGCN";
                dp
            }
        }
    }
}

/// A complete declarative architecture description — everything
/// [`CustomArch`] needs to simulate it, nothing more.
#[derive(Debug, Clone, PartialEq)]
pub struct ArchSpec {
    /// Canonical lowercase kebab-case name (job specs, CLI, cache keys).
    pub name: String,
    /// Paper-style display name.
    pub display: String,
    /// One-line description.
    pub summary: String,
    /// The sparsity pattern the architecture natively executes.
    pub pattern: PatternKind,
    /// The scheduling policy it ships with.
    pub schedule: SchedulePolicy,
    /// Whether the §VI hierarchical sparsity-aware scheduling is present.
    pub hierarchical_scheduling: bool,
    /// The slot-cost expression of the dataflow.
    pub dataflow: Dataflow,
    /// Whether a per-row frontend decode (SGCN's CSR row setup) adds one
    /// slot-cycle per non-empty row, amortized over the PEs.
    pub row_frontend: bool,
    /// The weight-stream storage format.
    pub codec: CodecSpec,
    /// When the weight stream degenerates to dense rows.
    pub dense_info: DenseInfoPolicy,
    /// Whether the architecture consumes DDC through the adaptive codec.
    pub consumes_ddc: bool,
    /// Off-chip bandwidth override in GB/s; `None` = platform default.
    pub bandwidth_gbps: Option<f64>,
    /// Multiplier-lane count; `None` = the platform's peak-parity count.
    pub lanes: Option<usize>,
    /// The datapath cost inventory.
    pub datapath: DatapathKind,
    /// Per-MAC dynamic-energy multiplier over the plain FP16 MAC.
    pub mac_energy_multiplier: f64,
}

/// Largest lockstep group / ratio width / SDC window: one 8×8 block.
pub const MAX_GROUP: usize = 8;

impl ArchSpec {
    /// Semantic validation beyond shape: value ranges, name discipline,
    /// non-empty dataflow. Returns the first violation as
    /// `"<field path>: <problem>"` (the caller prefixes `arch_spec.`).
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("name: must be non-empty".into());
        }
        if !self
            .name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
        {
            return Err(format!(
                "name: `{}` must be lowercase kebab-case ([a-z0-9-])",
                self.name
            ));
        }
        if self.name.starts_with('-') || self.name.ends_with('-') {
            return Err(format!(
                "name: `{}` must not start or end with `-`",
                self.name
            ));
        }
        if self.display.is_empty() {
            return Err("display: must be non-empty".into());
        }
        if self.dataflow.terms.is_empty() {
            return Err("dataflow.terms: must list at least one term".into());
        }
        for (i, term) in self.dataflow.terms.iter().enumerate() {
            let (label, v) = match *term {
                SlotTerm::Lockstep { group } => ("lockstep", group),
                SlotTerm::RatioGrouped { width } => ("ratio-grouped", width),
                _ => continue,
            };
            if !(1..=MAX_GROUP).contains(&v) {
                return Err(format!(
                    "dataflow.terms[{i}]: {label} {v} out of range 1..={MAX_GROUP}"
                ));
            }
        }
        if !self.dataflow.multiplier.is_finite() || self.dataflow.multiplier < 1.0 {
            return Err(format!(
                "dataflow.multiplier: {} must be finite and ≥ 1",
                self.dataflow.multiplier
            ));
        }
        if !self.dataflow.efficiency.is_finite()
            || self.dataflow.efficiency <= 0.0
            || self.dataflow.efficiency > 1.0
        {
            return Err(format!(
                "dataflow.efficiency: {} must be in (0, 1]",
                self.dataflow.efficiency
            ));
        }
        if let CodecSpec::GroupedSdc { group } = self.codec {
            if !(1..=MAX_GROUP).contains(&group) {
                return Err(format!("codec.group: {group} out of range 1..={MAX_GROUP}"));
            }
        }
        if let Some(bw) = self.bandwidth_gbps {
            if !bw.is_finite() || bw <= 0.0 {
                return Err(format!("bandwidth_gbps: {bw} must be finite and positive"));
            }
        }
        if let Some(lanes) = self.lanes {
            if lanes == 0 {
                return Err("lanes: must be ≥ 1".into());
            }
        }
        if !self.mac_energy_multiplier.is_finite() || self.mac_energy_multiplier < 1.0 {
            return Err(format!(
                "mac_energy_multiplier: {} must be finite and ≥ 1",
                self.mac_energy_multiplier
            ));
        }
        Ok(())
    }
}

/// A spec-driven architecture: interprets an [`ArchSpec`] as a full
/// [`ArchModel`]. Construction validates the spec, so every live
/// `CustomArch` is well-formed.
pub struct CustomArch {
    spec: ArchSpec,
    id: ArchId,
}

impl CustomArch {
    /// Interprets a validated spec. Returns the validation message on a
    /// malformed one.
    pub fn new(spec: ArchSpec) -> Result<CustomArch, String> {
        spec.validate()?;
        let id = ArchId::custom(&spec.name);
        Ok(CustomArch { spec, id })
    }

    /// The interpreted spec.
    pub fn spec_ref(&self) -> &ArchSpec {
        &self.spec
    }
}

impl ArchModel for CustomArch {
    fn id(&self) -> ArchId {
        self.id.clone()
    }

    fn display_name(&self) -> &str {
        &self.spec.display
    }

    fn canonical_name(&self) -> &str {
        &self.spec.name
    }

    fn summary(&self) -> &str {
        &self.spec.summary
    }

    fn spec(&self) -> ArchSpec {
        self.spec.clone()
    }

    fn native_pattern(&self) -> PatternKind {
        self.spec.pattern
    }

    fn native_schedule(&self) -> SchedulePolicy {
        self.spec.schedule
    }

    fn block_work(&self, b: &BlockStats) -> BlockWork {
        BlockWork {
            slots: self.spec.dataflow.slots(b),
            nonempty_rows: if self.spec.dataflow.has_dense_term() {
                b.block_rows
            } else {
                b.nonempty_rows
            },
            independent_dim: b.independent_dim,
        }
    }

    /// Batched pricing at builtin speeds: nnz-only dataflows zip the
    /// plan's occupancy columns, dense-only ones its geometry columns;
    /// only mixed row-shape terms fall back to per-block stats.
    fn block_works_batch(&self, plan: &BlockPlan) -> Vec<BlockWork> {
        let df = &self.spec.dataflow;
        match df.terms.as_slice() {
            [SlotTerm::Nnz] => nnz_proportional_batch(plan, |nnz| df.scale(nnz)),
            [SlotTerm::Dense] => plan
                .dense_slots()
                .iter()
                .zip(plan.block_rows())
                .zip(plan.independent_dim())
                .map(|((&slots, &rows), &indep)| BlockWork {
                    slots: df.scale(slots),
                    nonempty_rows: rows,
                    independent_dim: indep,
                })
                .collect(),
            _ => {
                let mut works = Vec::with_capacity(plan.len());
                for i in 0..plan.len() {
                    works.push(self.block_work(&plan.stats(i)));
                }
                works
            }
        }
    }

    fn extra_compute_cycles(&self, works: &[BlockWork], pes: usize) -> u64 {
        if !self.spec.row_frontend {
            return 0;
        }
        let rows: u64 = works.iter().map(|w| w.nonempty_rows as u64).sum();
        rows.div_ceil(pes as u64)
    }

    fn weight_trace(&self, layer: &SparseLayer, plan: &BlockPlan) -> WeightTrace {
        self.spec.codec.weight_trace(layer, plan)
    }

    fn dense_info_stream(&self, layer: &SparseLayer, fmt: FormatOverride) -> bool {
        match self.spec.dense_info {
            DenseInfoPolicy::Never => false,
            DenseInfoPolicy::Always => true,
            DenseInfoPolicy::NonTbsNative => layer.tbs().is_none() && fmt == FormatOverride::Native,
        }
    }

    fn consumes_ddc(&self) -> bool {
        self.spec.consumes_ddc
    }

    fn datapath(&self, shape: PeArrayShape) -> DatapathCosts {
        self.spec.datapath.build(shape)
    }

    fn lanes(&self, shape: PeArrayShape) -> usize {
        self.spec.lanes.unwrap_or_else(|| shape.mults())
    }

    fn bandwidth_override_gbps(&self) -> Option<f64> {
        self.spec.bandwidth_gbps
    }

    fn has_hierarchical_scheduling(&self) -> bool {
        self.spec.hierarchical_scheduling
    }

    fn mac_energy_multiplier(&self) -> f64 {
        self.spec.mac_energy_multiplier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Arch;

    fn tb_spec() -> ArchSpec {
        Arch::TbStc.model().spec()
    }

    #[test]
    fn builtin_specs_validate() {
        for arch in Arch::ALL {
            let spec = arch.model().spec();
            spec.validate().unwrap_or_else(|e| {
                panic!("{} spec invalid: {e}", arch.canonical_name());
            });
            assert_eq!(spec.name, arch.canonical_name());
        }
    }

    #[test]
    fn custom_arch_identity_is_custom() {
        let mut spec = tb_spec();
        spec.name = "my-tbs".into();
        let arch = CustomArch::new(spec).unwrap();
        assert_eq!(arch.id(), ArchId::custom("my-tbs"));
        assert_eq!(arch.id().builtin(), None);
        assert_eq!(arch.canonical_name(), "my-tbs");
    }

    #[test]
    fn validation_names_the_field_path() {
        type Mutation = Box<dyn Fn(&mut ArchSpec)>;
        let cases: [(&str, Mutation); 6] = [
            ("name:", Box::new(|s| s.name = "Bad Name".into())),
            ("dataflow.terms:", Box::new(|s| s.dataflow.terms.clear())),
            (
                "dataflow.efficiency:",
                Box::new(|s| s.dataflow.efficiency = 0.0),
            ),
            (
                "dataflow.multiplier:",
                Box::new(|s| s.dataflow.multiplier = f64::NAN),
            ),
            (
                "bandwidth_gbps:",
                Box::new(|s| s.bandwidth_gbps = Some(-1.0)),
            ),
            ("lanes:", Box::new(|s| s.lanes = Some(0))),
        ];
        for (needle, mutate) in cases {
            let mut spec = tb_spec();
            mutate(&mut spec);
            let err = spec.validate().unwrap_err();
            assert!(err.starts_with(needle), "{needle} !~ {err}");
            assert!(CustomArch::new(spec).is_err());
        }
    }

    #[test]
    fn unit_dataflow_passes_slots_through() {
        let df = Dataflow::nnz();
        assert_eq!(df.scale(17), 17);
        let scaled = Dataflow {
            terms: vec![SlotTerm::Nnz],
            multiplier: 1.0,
            efficiency: 0.94,
        };
        assert_eq!(scaled.scale(17), ((17.0f64) / 0.94).ceil() as usize);
    }
}
