//! Functional model of the Diverse Vector PE (paper §VI-A1, Fig. 10(a)
//! and Fig. 11(c,d)).
//!
//! The analytical compute model in [`crate::compute`] only counts cycles;
//! this module *executes* a DVPE cycle by cycle so the intra-block
//! mapping can be validated numerically:
//!
//! * 8 FP16 **multiplier lanes** take `(a, b)` operand pairs, each tagged
//!   with the output row its product belongs to,
//! * the **reduction nodes** form a binary tree whose nodes either
//!   *accumulate* (children belong to the same output row) or *transmit*
//!   (row boundary crosses the node) — the configurable `R` nodes of
//!   Fig. 10(a),
//! * the **alternate unit** buffers partial sums whose rows continue in a
//!   later issue and merges them with the next partial result
//!   (Fig. 10(a): "balances the number of output elements by buffering").
//!
//! [`pack_issues`] implements the intra-block sparsity-aware mapping of
//! Fig. 11(c): the concatenated elements of different rows fill all 8
//! lanes of each issue, so a block costs `ceil(nnz / 8)` issues instead
//! of one per non-empty row.

use std::collections::BTreeMap;

use tbstc_matrix::F16;

/// One operand pair on one multiplier lane, tagged with its output row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneOp {
    /// Weight (matrix A) value.
    pub a: f32,
    /// Activation (matrix B) value the MBD unit selected.
    pub b: f32,
    /// Output row within the block this product accumulates into.
    pub row: usize,
}

/// One SIMD issue: up to `width` lane operations, sorted by row (the
/// mapping concatenates row segments, Fig. 11(c)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DvpeIssue {
    /// The occupied lanes in order.
    pub lanes: Vec<LaneOp>,
}

/// Execution statistics of one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DvpeTrace {
    /// Multiply issues executed.
    pub issues: u64,
    /// Reduction-node accumulate operations performed.
    pub accumulates: u64,
    /// Partial sums the alternate unit had to buffer across issues.
    pub alternate_merges: u64,
    /// Peak occupancy of the alternate unit's buffer.
    pub peak_buffered: usize,
}

/// The functional DVPE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dvpe {
    width: usize,
    fp16: bool,
}

impl Dvpe {
    /// The paper's DVPE: 8 lanes, fp16 datapath.
    pub fn paper_default() -> Self {
        Dvpe {
            width: 8,
            fp16: true,
        }
    }

    /// A DVPE with exact f32 arithmetic (for golden-model comparison).
    pub fn exact(width: usize) -> Self {
        assert!(width > 0, "need at least one lane");
        Dvpe { width, fp16: false }
    }

    /// Lane count.
    pub fn width(&self) -> usize {
        self.width
    }

    fn round(&self, x: f32) -> f32 {
        if self.fp16 {
            F16::round_trip(x)
        } else {
            x
        }
    }

    /// Executes a block's issue stream and returns `(row, dot-product)`
    /// pairs in row order plus the cycle-level trace.
    ///
    /// # Panics
    ///
    /// Panics when an issue uses more lanes than the DVPE has, or lanes
    /// within an issue are not grouped by row (the segmented reduction
    /// tree requires contiguous row segments).
    pub fn execute(&self, issues: &[DvpeIssue]) -> (Vec<(usize, f32)>, DvpeTrace) {
        let mut trace = DvpeTrace::default();
        // Alternate-unit buffer: row -> partial sum awaiting more elements.
        let mut pending: BTreeMap<usize, f32> = BTreeMap::new();
        let mut finished: BTreeMap<usize, f32> = BTreeMap::new();

        for issue in issues {
            assert!(
                issue.lanes.len() <= self.width,
                "issue uses {} lanes on a {}-wide DVPE",
                issue.lanes.len(),
                self.width
            );
            assert!(
                issue.lanes.windows(2).all(|w| w[0].row <= w[1].row),
                "lanes must be grouped by row for the segmented reduction tree"
            );
            trace.issues += 1;

            // Multipliers then the segmented reduction tree: contiguous
            // same-row lanes accumulate; boundaries transmit.
            let mut segment_row: Option<usize> = None;
            let mut segment_sum = 0.0f32;
            let emit = |row: usize,
                        sum: f32,
                        pending: &mut BTreeMap<usize, f32>,
                        trace: &mut DvpeTrace,
                        rounder: &dyn Fn(f32) -> f32| {
                // The alternate unit merges with any buffered partial.
                if let Some(prev) = pending.remove(&row) {
                    trace.alternate_merges += 1;
                    pending.insert(row, rounder(prev + sum));
                } else {
                    pending.insert(row, sum);
                }
            };
            for lane in &issue.lanes {
                let product = self.round(lane.a * lane.b);
                match segment_row {
                    Some(r) if r == lane.row => {
                        segment_sum = self.round(segment_sum + product);
                        trace.accumulates += 1;
                    }
                    Some(r) => {
                        emit(r, segment_sum, &mut pending, &mut trace, &|x| self.round(x));
                        segment_row = Some(lane.row);
                        segment_sum = product;
                    }
                    None => {
                        segment_row = Some(lane.row);
                        segment_sum = product;
                    }
                }
            }
            if let Some(r) = segment_row {
                emit(r, segment_sum, &mut pending, &mut trace, &|x| self.round(x));
            }
            trace.peak_buffered = trace.peak_buffered.max(pending.len());
        }

        // Drain: every buffered row is final once the stream ends.
        finished.append(&mut pending);
        (finished.into_iter().collect(), trace)
    }
}

/// Packs a computation-format element stream into DVPE issues — the
/// intra-block sparsity-aware mapping of Fig. 11(c): elements of
/// different rows are concatenated so every issue fills up to `width`
/// lanes.
///
/// `elements` must be grouped by row (the codec's computation format
/// already is, up to its merge tail, which this function re-sorts).
pub fn pack_issues(mut elements: Vec<LaneOp>, width: usize) -> Vec<DvpeIssue> {
    assert!(width > 0, "need at least one lane");
    elements.sort_by_key(|e| e.row);
    elements
        .chunks(width)
        .map(|c| DvpeIssue { lanes: c.to_vec() })
        .collect()
}

/// The naive mapping of Fig. 11(c): one issue per non-empty row,
/// regardless of how few lanes the row fills.
pub fn pack_issues_naive(mut elements: Vec<LaneOp>, width: usize) -> Vec<DvpeIssue> {
    assert!(width > 0, "need at least one lane");
    elements.sort_by_key(|e| e.row);
    let mut issues = Vec::new();
    let mut i = 0;
    while i < elements.len() {
        let row = elements[i].row;
        let mut lanes = Vec::new();
        while i < elements.len() && elements[i].row == row && lanes.len() < width {
            lanes.push(elements[i]);
            i += 1;
        }
        issues.push(DvpeIssue { lanes });
    }
    issues
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbstc_matrix::rng::MatrixRng;

    fn ops_from_block(seed: u64, sparsity: f64) -> (Vec<LaneOp>, Vec<f32>) {
        // An 8×8 block with per-element B values; golden row sums.
        let mut rng = MatrixRng::seed_from(seed);
        let a = rng.sparse_gaussian(8, 8, sparsity, 1.0);
        let b = rng.uniform(8, 1, -1.0, 1.0);
        let mut ops = Vec::new();
        let mut golden = vec![0.0f32; 8];
        for r in 0..8 {
            for c in 0..8 {
                if a[(r, c)] != 0.0 {
                    ops.push(LaneOp {
                        a: a[(r, c)],
                        b: b[(c, 0)],
                        row: r,
                    });
                    golden[r] += a[(r, c)] * b[(c, 0)];
                }
            }
        }
        (ops, golden)
    }

    #[test]
    fn exact_dvpe_matches_golden_row_sums() {
        let (ops, golden) = ops_from_block(1, 0.5);
        let dvpe = Dvpe::exact(8);
        let issues = pack_issues(ops, 8);
        let (out, _) = dvpe.execute(&issues);
        for (row, sum) in out {
            assert!(
                (sum - golden[row]).abs() < 1e-5,
                "row {row}: {sum} vs {}",
                golden[row]
            );
        }
    }

    #[test]
    fn fp16_dvpe_close_to_golden() {
        let (ops, golden) = ops_from_block(2, 0.5);
        let dvpe = Dvpe::paper_default();
        let (out, _) = dvpe.execute(&pack_issues(ops, 8));
        for (row, sum) in out {
            assert!((sum - golden[row]).abs() < 0.02, "row {row}");
        }
    }

    #[test]
    fn balanced_mapping_uses_fewer_issues_than_naive() {
        // Fig. 11(c): rows {4,1,2,1} = 8 elements. Balanced: 1 issue;
        // naive: 4.
        let mut ops = Vec::new();
        for (row, count) in [(0usize, 4usize), (1, 1), (2, 2), (3, 1)] {
            for i in 0..count {
                ops.push(LaneOp {
                    a: 1.0,
                    b: (i + 1) as f32,
                    row,
                });
            }
        }
        let balanced = pack_issues(ops.clone(), 8);
        let naive = pack_issues_naive(ops, 8);
        assert_eq!(balanced.len(), 1);
        assert_eq!(naive.len(), 4);
    }

    #[test]
    fn both_mappings_compute_identical_results() {
        let (ops, _) = ops_from_block(3, 0.6);
        let dvpe = Dvpe::exact(8);
        let (a, _) = dvpe.execute(&pack_issues(ops.clone(), 8));
        let (b, _) = dvpe.execute(&pack_issues_naive(ops, 8));
        assert_eq!(a, b);
    }

    #[test]
    fn alternate_unit_merges_split_rows() {
        // A row with 12 elements spans two issues; the alternate unit must
        // merge the partial sums (the Fig. 11(d) R0-accumulate case).
        let ops: Vec<LaneOp> = (0..12)
            .map(|i| LaneOp {
                a: 1.0,
                b: (i + 1) as f32,
                row: 0,
            })
            .collect();
        let dvpe = Dvpe::exact(8);
        let (out, trace) = dvpe.execute(&pack_issues(ops, 8));
        assert_eq!(out, vec![(0, 78.0)]); // 1+2+..+12
        assert!(trace.alternate_merges >= 1);
        assert_eq!(trace.issues, 2);
    }

    #[test]
    fn fig11d_example_timing() {
        // Fig. 11(d): an independent-dimension block whose 8 elements map
        // to rows {0,0,0,0,0,1,1,1} plus a trailing element of row 0 from
        // the merged mapping — one concatenated issue computes both
        // D(0,0) and D(1,0) partial results in the same pass.
        let ops = vec![
            LaneOp {
                a: 1.0,
                b: 2.0,
                row: 0,
            },
            LaneOp {
                a: 3.0,
                b: 1.0,
                row: 0,
            },
            LaneOp {
                a: 2.0,
                b: 2.0,
                row: 0,
            },
            LaneOp {
                a: 1.0,
                b: 1.0,
                row: 1,
            },
        ];
        let dvpe = Dvpe::exact(8);
        let (out, trace) = dvpe.execute(&pack_issues(ops, 8));
        assert_eq!(trace.issues, 1, "one concatenated issue");
        assert_eq!(out, vec![(0, 9.0), (1, 1.0)]);
        // Two accumulates inside row 0's segment; the row-1 boundary is a
        // transmit (not counted as accumulate).
        assert_eq!(trace.accumulates, 2);
    }

    #[test]
    #[should_panic(expected = "grouped by row")]
    fn ungrouped_lanes_rejected() {
        let issue = DvpeIssue {
            lanes: vec![
                LaneOp {
                    a: 1.0,
                    b: 1.0,
                    row: 1,
                },
                LaneOp {
                    a: 1.0,
                    b: 1.0,
                    row: 0,
                },
            ],
        };
        let _ = Dvpe::exact(8).execute(&[issue]);
    }

    #[test]
    #[should_panic(expected = "lanes on a")]
    fn overwide_issue_rejected() {
        let issue = DvpeIssue {
            lanes: (0..9)
                .map(|_| LaneOp {
                    a: 1.0,
                    b: 1.0,
                    row: 0,
                })
                .collect(),
        };
        let _ = Dvpe::exact(8).execute(&[issue]);
    }

    #[test]
    fn empty_stream_is_empty() {
        let (out, trace) = Dvpe::paper_default().execute(&[]);
        assert!(out.is_empty());
        assert_eq!(trace.issues, 0);
    }
}
