//! SGCN: high-sparsity GNN accelerator (Fig. 15(d) baseline).
//! Element-granular CSR processing — great at extreme sparsity, wasteful
//! in the 30–90 % band — with a 256 GB/s memory system.

use tbstc_energy::components::{self, DatapathCosts, PeArrayShape};
use tbstc_formats::Csr;
use tbstc_sparsity::PatternKind;

use crate::arch::{Arch, ArchId};
use crate::archs::{nnz_proportional_batch, ArchModel, BlockStats, WeightTrace};
use crate::compute::SchedulePolicy;
use crate::layer::SparseLayer;
use crate::plan::BlockPlan;
use crate::sched::{BlockWork, InterBlockPolicy, IntraBlockPolicy};
use crate::spec::{ArchSpec, CodecSpec, Dataflow, DatapathKind, DenseInfoPolicy, SlotTerm};

/// SGCN's element-granular gather efficiency at DNN-range sparsity.
const EFFICIENCY: f64 = 0.7;

/// The SGCN baseline.
pub struct Sgcn;

impl ArchModel for Sgcn {
    fn id(&self) -> ArchId {
        ArchId::Builtin(Arch::Sgcn)
    }

    fn display_name(&self) -> &'static str {
        "SGCN"
    }

    fn canonical_name(&self) -> &'static str {
        "sgcn"
    }

    fn summary(&self) -> &'static str {
        "GNN accelerator: CSR element granularity, 256 GB/s, row frontend"
    }

    fn spec(&self) -> ArchSpec {
        ArchSpec {
            name: self.canonical_name().into(),
            display: self.display_name().into(),
            summary: self.summary().into(),
            pattern: self.native_pattern(),
            schedule: self.native_schedule(),
            hierarchical_scheduling: self.has_hierarchical_scheduling(),
            dataflow: Dataflow {
                terms: vec![SlotTerm::Nnz],
                multiplier: 1.0,
                efficiency: EFFICIENCY,
            },
            row_frontend: true,
            codec: CodecSpec::Csr,
            dense_info: DenseInfoPolicy::Never,
            consumes_ddc: self.consumes_ddc(),
            bandwidth_gbps: self.bandwidth_override_gbps(),
            lanes: None,
            datapath: DatapathKind::Sgcn,
            mac_energy_multiplier: self.mac_energy_multiplier(),
        }
    }

    fn native_pattern(&self) -> PatternKind {
        PatternKind::Unstructured
    }

    /// Stream merging over unstructured work, like RM-STC's.
    fn native_schedule(&self) -> SchedulePolicy {
        SchedulePolicy {
            inter: InterBlockPolicy::SparsityAware,
            intra: IntraBlockPolicy::Balanced,
        }
    }

    /// Nnz-proportional with the gather-efficiency factor.
    fn block_work(&self, b: &BlockStats) -> BlockWork {
        BlockWork {
            slots: ((b.nnz as f64) / EFFICIENCY).ceil() as usize,
            nonempty_rows: b.nonempty_rows,
            independent_dim: b.independent_dim,
        }
    }

    /// Nnz pricing zips the plan's occupancy columns directly.
    fn block_works_batch(&self, plan: &BlockPlan) -> Vec<BlockWork> {
        nnz_proportional_batch(plan, |nnz| ((nnz as f64) / EFFICIENCY).ceil() as usize)
    }

    /// A per-row frontend setup (CSR row decode), amortized over the
    /// layer: one slot-cycle per non-empty row of the weight stream.
    fn extra_compute_cycles(&self, works: &[BlockWork], pes: usize) -> u64 {
        let rows: u64 = works.iter().map(|w| w.nonempty_rows as u64).sum();
        rows.div_ceil(pes as u64)
    }

    /// CSR stream with per-element indices.
    fn weight_trace(&self, layer: &SparseLayer, _plan: &BlockPlan) -> WeightTrace {
        WeightTrace::from_access_trace(Csr::encode(layer.sampled()).streaming_trace())
    }

    /// SGCN's compressed-sparse frontend carries gather/union-class logic
    /// like RM-STC's.
    fn datapath(&self, shape: PeArrayShape) -> DatapathCosts {
        let mut dp = components::rm_stc(shape);
        dp.name = "SGCN";
        dp
    }

    /// SGCN provisions 256 GB/s (§VII-D4); its peak-compute parity comes
    /// from the bandwidth ratio and element-granular frontend, not lanes.
    fn bandwidth_override_gbps(&self) -> Option<f64> {
        Some(256.0)
    }

    /// CSR intersection index matching.
    fn mac_energy_multiplier(&self) -> f64 {
        1.8
    }
}
