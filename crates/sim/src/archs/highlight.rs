//! HighLight: hierarchical structured sparsity with a uniform per-level
//! ratio — homogeneous rows, but two-level metadata intersection on every
//! element cluster.

use tbstc_energy::components::{self, DatapathCosts, PeArrayShape};
use tbstc_formats::Sdc;
use tbstc_sparsity::PatternKind;

use crate::arch::{Arch, ArchId};
use crate::archs::{ratio_grouped_slots, ArchModel, BlockStats, WeightTrace};
use crate::compute::SchedulePolicy;
use crate::layer::SparseLayer;
use crate::plan::BlockPlan;
use crate::sched::{BlockWork, InterBlockPolicy, IntraBlockPolicy};
use crate::spec::{ArchSpec, CodecSpec, Dataflow, DatapathKind, DenseInfoPolicy, SlotTerm};

/// HighLight's two-level metadata intersection overhead per element
/// cluster (hierarchical coordinate decoding on the datapath).
const INTERSECT_OVERHEAD: f64 = 1.06;

/// The HighLight baseline.
pub struct Highlight;

impl ArchModel for Highlight {
    fn id(&self) -> ArchId {
        ArchId::Builtin(Arch::Highlight)
    }

    fn display_name(&self) -> &'static str {
        "HighLight"
    }

    fn canonical_name(&self) -> &'static str {
        "highlight"
    }

    fn summary(&self) -> &'static str {
        "Hierarchical structured sparsity; uniform ratios, 2-level metadata"
    }

    fn spec(&self) -> ArchSpec {
        ArchSpec {
            name: self.canonical_name().into(),
            display: self.display_name().into(),
            summary: self.summary().into(),
            pattern: self.native_pattern(),
            schedule: self.native_schedule(),
            hierarchical_scheduling: self.has_hierarchical_scheduling(),
            dataflow: Dataflow {
                terms: vec![SlotTerm::RatioGrouped { width: 8 }],
                multiplier: INTERSECT_OVERHEAD,
                efficiency: 1.0,
            },
            row_frontend: false,
            codec: CodecSpec::Sdc,
            dense_info: DenseInfoPolicy::Never,
            consumes_ddc: self.consumes_ddc(),
            bandwidth_gbps: self.bandwidth_override_gbps(),
            lanes: None,
            datapath: DatapathKind::Highlight,
            mac_energy_multiplier: self.mac_energy_multiplier(),
        }
    }

    fn native_pattern(&self) -> PatternKind {
        PatternKind::RowWiseHighlight
    }

    /// One-dimensional balancing like VEGETA's (see there).
    fn native_schedule(&self) -> SchedulePolicy {
        SchedulePolicy {
            inter: InterBlockPolicy::SparsityAware,
            intra: IntraBlockPolicy::Balanced,
        }
    }

    /// The uniform hierarchical ratio keeps rows homogeneous (small
    /// grouping penalty) but pays two-level metadata intersection on
    /// every cluster.
    fn block_work(&self, b: &BlockStats) -> BlockWork {
        BlockWork {
            slots: (ratio_grouped_slots(&b.row_nnz, 8) as f64 * INTERSECT_OVERHEAD).ceil() as usize,
            nonempty_rows: b.nonempty_rows,
            independent_dim: b.independent_dim,
        }
    }

    /// Ratio pricing reads the packed `row_nnz` column straight off the
    /// plan.
    fn block_works_batch(&self, plan: &BlockPlan) -> Vec<BlockWork> {
        let mut works = Vec::with_capacity(plan.len());
        for ((i, &rows), &indep) in plan
            .nonempty_rows()
            .iter()
            .enumerate()
            .zip(plan.independent_dim())
        {
            works.push(BlockWork {
                slots: (ratio_grouped_slots(plan.row_nnz(i), 8) as f64 * INTERSECT_OVERHEAD).ceil()
                    as usize,
                nonempty_rows: rows,
                independent_dim: indep,
            });
        }
        works
    }

    /// Homogeneous rows: whole-matrix SDC alignment pads almost nothing.
    fn weight_trace(&self, layer: &SparseLayer, _plan: &BlockPlan) -> WeightTrace {
        WeightTrace::from_access_trace(Sdc::encode(layer.sampled()).access_trace())
    }

    fn datapath(&self, shape: PeArrayShape) -> DatapathCosts {
        components::highlight(shape)
    }
}
