//! VEGETA: row-wise N:M with per-row ratios on a vertical-SIMD engine.

use tbstc_energy::components::{self, DatapathCosts, PeArrayShape};
use tbstc_sparsity::PatternKind;

use crate::arch::{Arch, ArchId};
use crate::archs::{
    grouped_sdc_trace, lockstep_slots, ratio_grouped_slots, ArchModel, BlockStats, WeightTrace,
};
use crate::compute::SchedulePolicy;
use crate::layer::SparseLayer;
use crate::plan::BlockPlan;
use crate::sched::{BlockWork, InterBlockPolicy, IntraBlockPolicy};
use crate::spec::{ArchSpec, CodecSpec, Dataflow, DatapathKind, DenseInfoPolicy, SlotTerm};

/// The VEGETA baseline.
pub struct Vegeta;

impl ArchModel for Vegeta {
    fn id(&self) -> ArchId {
        ArchId::Builtin(Arch::Vegeta)
    }

    fn display_name(&self) -> &'static str {
        "VEGETA"
    }

    fn canonical_name(&self) -> &'static str {
        "vegeta"
    }

    fn summary(&self) -> &'static str {
        "Row-wise N:M; SIMD lockstep + per-ratio B-select issues"
    }

    fn spec(&self) -> ArchSpec {
        ArchSpec {
            name: self.canonical_name().into(),
            display: self.display_name().into(),
            summary: self.summary().into(),
            pattern: self.native_pattern(),
            schedule: self.native_schedule(),
            hierarchical_scheduling: self.has_hierarchical_scheduling(),
            dataflow: Dataflow {
                terms: vec![
                    SlotTerm::Lockstep { group: 4 },
                    SlotTerm::RatioGrouped { width: 8 },
                ],
                multiplier: 1.0,
                efficiency: 1.0,
            },
            row_frontend: false,
            codec: CodecSpec::GroupedSdc { group: 8 },
            dense_info: DenseInfoPolicy::Never,
            consumes_ddc: self.consumes_ddc(),
            bandwidth_gbps: self.bandwidth_override_gbps(),
            lanes: None,
            datapath: DatapathKind::Vegeta,
            mac_energy_multiplier: self.mac_energy_multiplier(),
        }
    }

    fn native_pattern(&self) -> PatternKind {
        PatternKind::RowWiseVegeta
    }

    /// Ships one-dimensional workload balancing (row-wise reordering,
    /// paper §I challenge 3), modelled as balanced placement; the
    /// ratio-grouping penalty lives in the slot counts instead.
    fn native_schedule(&self) -> SchedulePolicy {
        SchedulePolicy {
            inter: InterBlockPolicy::SparsityAware,
            intra: IntraBlockPolicy::Balanced,
        }
    }

    /// VEGETA's vertical SIMD has two one-dimensional constraints:
    /// adjacent row pairs run in lockstep (2 × max per pair) and rows of
    /// different ratios need separate B-select issues. Uniform ratios
    /// satisfy both for free; heterogeneous blocks pay the binding one —
    /// the challenge-3 imbalance.
    fn block_work(&self, b: &BlockStats) -> BlockWork {
        BlockWork {
            slots: lockstep_slots(&b.row_nnz, 4).max(ratio_grouped_slots(&b.row_nnz, 8)),
            nonempty_rows: b.nonempty_rows,
            independent_dim: b.independent_dim,
        }
    }

    /// Lockstep/ratio pricing reads the packed `row_nnz` column straight
    /// off the plan.
    fn block_works_batch(&self, plan: &BlockPlan) -> Vec<BlockWork> {
        let mut works = Vec::with_capacity(plan.len());
        for ((i, &rows), &indep) in plan
            .nonempty_rows()
            .iter()
            .enumerate()
            .zip(plan.independent_dim())
        {
            let rn = plan.row_nnz(i);
            works.push(BlockWork {
                slots: lockstep_slots(rn, 4).max(ratio_grouped_slots(rn, 8)),
                nonempty_rows: rows,
                independent_dim: indep,
            });
        }
        works
    }

    /// Single-dimensional compression aligned per co-scheduled 8-row
    /// group (VEGETA pads each group to its own max row population —
    /// less redundant than whole-matrix alignment, still padded on
    /// heterogeneous rows). The per-row populations come off the plan's
    /// `matrix_row_nnz` column instead of re-counting matrix rows.
    fn weight_trace(&self, _layer: &SparseLayer, plan: &BlockPlan) -> WeightTrace {
        grouped_sdc_trace(plan.matrix_row_nnz(), 8)
    }

    fn datapath(&self, shape: PeArrayShape) -> DatapathCosts {
        components::vegeta(shape)
    }
}
