//! NVIDIA Sparse Tensor Core: 2:4 / 4:8 tile sparsity only — a 50 %
//! density floor regardless of the requested target.

use tbstc_energy::components::{self, DatapathCosts, PeArrayShape};
use tbstc_sparsity::PatternKind;

use crate::arch::{Arch, ArchId};
use crate::archs::{nnz_proportional_batch, ArchModel, BlockStats, WeightTrace};
use crate::compute::SchedulePolicy;
use crate::layer::SparseLayer;
use crate::plan::BlockPlan;
use crate::sched::{BlockWork, InterBlockPolicy, IntraBlockPolicy};
use crate::spec::{ArchSpec, CodecSpec, Dataflow, DatapathKind, DenseInfoPolicy};

/// The NVIDIA STC baseline.
pub struct Stc;

impl ArchModel for Stc {
    fn id(&self) -> ArchId {
        ArchId::Builtin(Arch::Stc)
    }

    fn display_name(&self) -> &'static str {
        "STC"
    }

    fn canonical_name(&self) -> &'static str {
        "stc"
    }

    fn summary(&self) -> &'static str {
        "NVIDIA Sparse Tensor Core; 4:8 tiles, density floored at 50%"
    }

    fn spec(&self) -> ArchSpec {
        ArchSpec {
            name: self.canonical_name().into(),
            display: self.display_name().into(),
            summary: self.summary().into(),
            pattern: self.native_pattern(),
            schedule: self.native_schedule(),
            hierarchical_scheduling: self.has_hierarchical_scheduling(),
            dataflow: Dataflow::nnz(),
            row_frontend: false,
            codec: CodecSpec::AlignedNm,
            dense_info: DenseInfoPolicy::Never,
            consumes_ddc: self.consumes_ddc(),
            bandwidth_gbps: self.bandwidth_override_gbps(),
            lanes: None,
            datapath: DatapathKind::NvidiaStc,
            mac_energy_multiplier: self.mac_energy_multiplier(),
        }
    }

    fn native_pattern(&self) -> PatternKind {
        PatternKind::TileNm
    }

    /// Uniform 4:8 work: nothing to balance.
    fn native_schedule(&self) -> SchedulePolicy {
        SchedulePolicy {
            inter: InterBlockPolicy::Direct,
            intra: IntraBlockPolicy::Balanced,
        }
    }

    /// STC executes its 4:8 mask; slots = nnz of the 50 % mask (the mask
    /// was already projected at 50 % by layer construction).
    fn block_work(&self, b: &BlockStats) -> BlockWork {
        BlockWork {
            slots: b.nnz,
            nonempty_rows: b.nonempty_rows,
            independent_dim: b.independent_dim,
        }
    }

    /// Nnz pricing zips the plan's occupancy columns directly.
    fn block_works_batch(&self, plan: &BlockPlan) -> Vec<BlockWork> {
        nnz_proportional_batch(plan, |nnz| nnz)
    }

    /// 4:8 values + 2-bit position metadata, perfectly aligned.
    fn weight_trace(&self, _layer: &SparseLayer, plan: &BlockPlan) -> WeightTrace {
        let nnz = plan.total_nnz() as u64;
        WeightTrace::sequential(nnz * 2 + nnz / 4)
    }

    fn datapath(&self, shape: PeArrayShape) -> DatapathCosts {
        components::nvidia_stc(shape)
    }
}
