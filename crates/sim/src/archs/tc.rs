//! Dense Tensor Core: every slot issues, dense row-major weight stream.

use tbstc_energy::components::{self, DatapathCosts, PeArrayShape};
use tbstc_sparsity::PatternKind;

use crate::arch::{Arch, ArchId};
use crate::archs::{ArchModel, BlockStats, WeightTrace};
use crate::compute::SchedulePolicy;
use crate::layer::SparseLayer;
use crate::memory::FormatOverride;
use crate::plan::BlockPlan;
use crate::sched::{BlockWork, InterBlockPolicy, IntraBlockPolicy};
use crate::spec::{ArchSpec, CodecSpec, Dataflow, DatapathKind, DenseInfoPolicy, SlotTerm};

/// The dense baseline (NVIDIA Tensor Core without sparsity support).
pub struct Tc;

impl ArchModel for Tc {
    fn id(&self) -> ArchId {
        ArchId::Builtin(Arch::Tc)
    }

    fn display_name(&self) -> &'static str {
        "TC"
    }

    fn canonical_name(&self) -> &'static str {
        "tc"
    }

    fn summary(&self) -> &'static str {
        "Dense Tensor Core; executes every MAC slot, streams full rows"
    }

    fn spec(&self) -> ArchSpec {
        ArchSpec {
            name: self.canonical_name().into(),
            display: self.display_name().into(),
            summary: self.summary().into(),
            pattern: self.native_pattern(),
            schedule: self.native_schedule(),
            hierarchical_scheduling: self.has_hierarchical_scheduling(),
            dataflow: Dataflow {
                terms: vec![SlotTerm::Dense],
                multiplier: 1.0,
                efficiency: 1.0,
            },
            row_frontend: false,
            codec: CodecSpec::DenseRows,
            dense_info: DenseInfoPolicy::Always,
            consumes_ddc: self.consumes_ddc(),
            bandwidth_gbps: self.bandwidth_override_gbps(),
            lanes: None,
            datapath: DatapathKind::TensorCore,
            mac_energy_multiplier: self.mac_energy_multiplier(),
        }
    }

    fn native_pattern(&self) -> PatternKind {
        PatternKind::Dense
    }

    /// Uniform work: nothing to balance.
    fn native_schedule(&self) -> SchedulePolicy {
        SchedulePolicy {
            inter: InterBlockPolicy::Direct,
            intra: IntraBlockPolicy::Balanced,
        }
    }

    /// Dense: every lane slot issues.
    fn block_work(&self, b: &BlockStats) -> BlockWork {
        BlockWork {
            slots: b.dense_slots,
            nonempty_rows: b.block_rows,
            independent_dim: b.independent_dim,
        }
    }

    /// Dense pricing reads only the geometry columns.
    fn block_works_batch(&self, plan: &BlockPlan) -> Vec<BlockWork> {
        plan.dense_slots()
            .iter()
            .zip(plan.block_rows())
            .zip(plan.independent_dim())
            .map(|((&slots, &rows), &indep)| BlockWork {
                slots,
                nonempty_rows: rows,
                independent_dim: indep,
            })
            .collect()
    }

    /// Dense rows, 2 bytes per element, sequential row requests.
    fn weight_trace(&self, layer: &SparseLayer, _plan: &BlockPlan) -> WeightTrace {
        let w = layer.sampled();
        let row_bytes = w.cols() as u64 * 2;
        WeightTrace {
            requests: (0..w.rows() as u64)
                .map(|r| (r * row_bytes, row_bytes))
                .collect(),
            stored_bytes: row_bytes * w.rows() as u64,
        }
    }

    /// The dense matrix *is* the information content, whatever the format.
    fn dense_info_stream(&self, _layer: &SparseLayer, _fmt: FormatOverride) -> bool {
        true
    }

    fn datapath(&self, shape: PeArrayShape) -> DatapathCosts {
        components::tensor_core(shape)
    }
}
