//! Ablation: TB-STC's DVPEs replaced by SIGMA's FAN reduction
//! (paper §VII-E2). Keeps TB-STC's pattern, format, codec and scheduler;
//! pays extra pipeline occupancy and forwarding energy.

use tbstc_energy::components::{self, DatapathCosts, PeArrayShape};
use tbstc_sparsity::PatternKind;

use crate::arch::{Arch, ArchId};
use crate::archs::{
    ddc_or_dense_trace, nnz_proportional_batch, ArchModel, BlockStats, WeightTrace,
};
use crate::compute::SchedulePolicy;
use crate::layer::SparseLayer;
use crate::memory::FormatOverride;
use crate::plan::BlockPlan;
use crate::sched::{BlockWork, InterBlockPolicy, IntraBlockPolicy};
use crate::spec::{ArchSpec, CodecSpec, Dataflow, DatapathKind, DenseInfoPolicy, SlotTerm};

/// Extra pipeline occupancy of SIGMA's FAN (deeper forwarding network).
const FAN_OVERHEAD: f64 = 1.12;

/// The DVPE→FAN ablation point.
pub struct DvpeFan;

impl ArchModel for DvpeFan {
    fn id(&self) -> ArchId {
        ArchId::Builtin(Arch::DvpeFan)
    }

    fn display_name(&self) -> &'static str {
        "DVPE+FAN"
    }

    fn canonical_name(&self) -> &'static str {
        "dvpe-fan"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["dvpefan"]
    }

    fn summary(&self) -> &'static str {
        "Ablation: TB-STC with SIGMA's FAN reduction instead of DVPEs"
    }

    fn spec(&self) -> ArchSpec {
        ArchSpec {
            name: self.canonical_name().into(),
            display: self.display_name().into(),
            summary: self.summary().into(),
            pattern: self.native_pattern(),
            schedule: self.native_schedule(),
            hierarchical_scheduling: self.has_hierarchical_scheduling(),
            dataflow: Dataflow {
                terms: vec![SlotTerm::Nnz],
                multiplier: FAN_OVERHEAD,
                efficiency: 1.0,
            },
            row_frontend: false,
            codec: CodecSpec::DdcOrDense,
            dense_info: DenseInfoPolicy::NonTbsNative,
            consumes_ddc: self.consumes_ddc(),
            bandwidth_gbps: self.bandwidth_override_gbps(),
            lanes: None,
            datapath: DatapathKind::DvpeWithFan,
            mac_energy_multiplier: self.mac_energy_multiplier(),
        }
    }

    fn native_pattern(&self) -> PatternKind {
        PatternKind::Tbs
    }

    /// The FAN ablation keeps TB-STC's scheduler.
    fn native_schedule(&self) -> SchedulePolicy {
        SchedulePolicy {
            inter: InterBlockPolicy::SparsityAware,
            intra: IntraBlockPolicy::Balanced,
        }
    }

    /// Nnz-proportional like TB-STC, times the FAN pipeline overhead.
    fn block_work(&self, b: &BlockStats) -> BlockWork {
        BlockWork {
            slots: ((b.nnz as f64) * FAN_OVERHEAD).ceil() as usize,
            nonempty_rows: b.nonempty_rows,
            independent_dim: b.independent_dim,
        }
    }

    /// Nnz pricing zips the plan's occupancy columns directly.
    fn block_works_batch(&self, plan: &BlockPlan) -> Vec<BlockWork> {
        nnz_proportional_batch(plan, |nnz| ((nnz as f64) * FAN_OVERHEAD).ceil() as usize)
    }

    fn weight_trace(&self, layer: &SparseLayer, _plan: &BlockPlan) -> WeightTrace {
        ddc_or_dense_trace(layer)
    }

    fn dense_info_stream(&self, layer: &SparseLayer, fmt: FormatOverride) -> bool {
        layer.tbs().is_none() && fmt == FormatOverride::Native
    }

    fn consumes_ddc(&self) -> bool {
        true
    }

    fn datapath(&self, shape: PeArrayShape) -> DatapathCosts {
        components::dvpe_with_fan(shape)
    }

    /// FAN forwards operands through extra nodes.
    fn mac_energy_multiplier(&self) -> f64 {
        1.45
    }
}
