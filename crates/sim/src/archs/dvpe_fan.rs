//! Ablation: TB-STC's DVPEs replaced by SIGMA's FAN reduction
//! (paper §VII-E2). Keeps TB-STC's pattern, format, codec and scheduler;
//! pays extra pipeline occupancy and forwarding energy.

use tbstc_energy::components::{self, DatapathCosts, PeArrayShape};
use tbstc_sparsity::PatternKind;

use crate::arch::Arch;
use crate::archs::{
    ddc_or_dense_trace, nnz_proportional_batch, ArchModel, BlockStats, WeightTrace,
};
use crate::compute::SchedulePolicy;
use crate::layer::SparseLayer;
use crate::memory::FormatOverride;
use crate::plan::BlockPlan;
use crate::sched::{BlockWork, InterBlockPolicy, IntraBlockPolicy};

/// Extra pipeline occupancy of SIGMA's FAN (deeper forwarding network).
const FAN_OVERHEAD: f64 = 1.12;

/// The DVPE→FAN ablation point.
pub struct DvpeFan;

impl ArchModel for DvpeFan {
    fn arch(&self) -> Arch {
        Arch::DvpeFan
    }

    fn display_name(&self) -> &'static str {
        "DVPE+FAN"
    }

    fn canonical_name(&self) -> &'static str {
        "dvpe-fan"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["dvpefan"]
    }

    fn summary(&self) -> &'static str {
        "Ablation: TB-STC with SIGMA's FAN reduction instead of DVPEs"
    }

    fn native_pattern(&self) -> PatternKind {
        PatternKind::Tbs
    }

    /// The FAN ablation keeps TB-STC's scheduler.
    fn native_schedule(&self) -> SchedulePolicy {
        SchedulePolicy {
            inter: InterBlockPolicy::SparsityAware,
            intra: IntraBlockPolicy::Balanced,
        }
    }

    /// Nnz-proportional like TB-STC, times the FAN pipeline overhead.
    fn block_work(&self, b: &BlockStats) -> BlockWork {
        BlockWork {
            slots: ((b.nnz as f64) * FAN_OVERHEAD).ceil() as usize,
            nonempty_rows: b.nonempty_rows,
            independent_dim: b.independent_dim,
        }
    }

    /// Nnz pricing zips the plan's occupancy columns directly.
    fn block_works_batch(&self, plan: &BlockPlan) -> Vec<BlockWork> {
        nnz_proportional_batch(plan, |nnz| ((nnz as f64) * FAN_OVERHEAD).ceil() as usize)
    }

    fn weight_trace(&self, layer: &SparseLayer, _plan: &BlockPlan) -> WeightTrace {
        ddc_or_dense_trace(layer)
    }

    fn dense_info_stream(&self, layer: &SparseLayer, fmt: FormatOverride) -> bool {
        layer.tbs().is_none() && fmt == FormatOverride::Native
    }

    fn consumes_ddc(&self) -> bool {
        true
    }

    fn datapath(&self, shape: PeArrayShape) -> DatapathCosts {
        components::dvpe_with_fan(shape)
    }

    /// FAN forwards operands through extra nodes.
    fn mac_energy_multiplier(&self) -> f64 {
        1.45
    }
}
