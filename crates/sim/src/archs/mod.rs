//! The pluggable architecture layer: one module per baseline, one trait,
//! one registry.
//!
//! Every simulated accelerator (§VII-A2 baselines + ablations) implements
//! [`ArchModel`]: its naming, native sparsity pattern, per-block compute
//! cost, weight-stream storage format, codec participation, scheduling
//! policy and datapath costs all live in one file under this module.
//! [`REGISTRY`] is the single dispatch point — `compute`, `memory`,
//! `pipeline`, the job-spec schema, the CLI and `tbstc-serve` all resolve
//! architectures through it, so adding a ninth architecture is a new
//! module plus one registry line (and zero new `match` arms: the
//! `arch_dispatch_lint` test forbids `Arch` variant dispatch outside this
//! directory).

pub mod dvpe_fan;
pub mod highlight;
pub mod rm_stc;
pub mod sgcn;
pub mod stc;
pub mod tb_stc;
pub mod tc;
pub mod vegeta;

use tbstc_energy::components::{DatapathCosts, PeArrayShape};
use tbstc_formats::AccessTrace;
use tbstc_sparsity::PatternKind;

use crate::arch::{Arch, ArchId};
use crate::compute::SchedulePolicy;
use crate::layer::SparseLayer;
use crate::memory::FormatOverride;
use crate::plan::BlockPlan;
use crate::sched::BlockWork;

/// Per-block statistics of the sampled pruned weights, as walked in 8×8
/// blocks — the input every architecture's dataflow turns into
/// [`BlockWork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockStats {
    /// Non-zero count of each of the (up to) 8 rows of the block.
    pub row_nnz: [usize; 8],
    /// Total non-zeros in the block.
    pub nnz: usize,
    /// Rows with at least one non-zero.
    pub nonempty_rows: usize,
    /// Whether the block's N:M runs along the independent dimension
    /// (TBS metadata; `false` for every other pattern).
    pub independent_dim: bool,
    /// Dense MAC slots of the (possibly edge-clipped) block.
    pub dense_slots: usize,
    /// Clipped block height (rows the block actually covers).
    pub block_rows: usize,
}

/// The sampled weight-stream an architecture's storage format emits:
/// DRAM requests plus the stored byte count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightTrace {
    /// Requests as `(addr, bytes)`, replayed through the DRAM model.
    pub requests: Vec<(u64, u64)>,
    /// Bytes the format stores (the useful-traffic numerator).
    pub stored_bytes: u64,
}

impl WeightTrace {
    /// A trace from a format's [`AccessTrace`].
    pub fn from_access_trace(t: AccessTrace) -> Self {
        let stored_bytes = t.total_bytes();
        WeightTrace {
            requests: t.requests().iter().map(|r| (r.addr, r.bytes)).collect(),
            stored_bytes,
        }
    }

    /// A perfectly sequential stream of `bytes`, split into
    /// row-buffer-friendly chunks.
    pub fn sequential(bytes: u64) -> Self {
        const CHUNK: u64 = 256;
        let mut requests = Vec::with_capacity((bytes / CHUNK + 1) as usize);
        let mut addr = 0;
        while addr < bytes {
            let len = CHUNK.min(bytes - addr);
            requests.push((addr, len));
            addr += len;
        }
        WeightTrace {
            requests,
            stored_bytes: bytes,
        }
    }
}

/// Everything the simulator needs to know about one accelerator
/// architecture. One implementation per baseline, registered in
/// [`REGISTRY`].
pub trait ArchModel: Sync {
    // --- Identity -------------------------------------------------------

    /// The identity this model simulates as: a registry [`Arch`] tag for
    /// builtins, a declared name for spec-defined architectures.
    fn id(&self) -> ArchId;

    /// Paper-style display name (e.g. `TB-STC`).
    fn display_name(&self) -> &str;

    /// Canonical lowercase kebab-case name (job specs, CLI, caches).
    fn canonical_name(&self) -> &str;

    /// Accepted alternate spellings (e.g. `tbstc` for `tb-stc`).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// One-line description for the README architecture table.
    fn summary(&self) -> &str;

    /// The architecture expressed as a declarative [`crate::spec::ArchSpec`]
    /// — the data document that reproduces this model bit-for-bit through
    /// [`crate::spec::CustomArch`] (the `spec_parity` tests pin this per
    /// builtin). `GET /v1/archs`, `tbstc-cli arch show` and the bundled
    /// spec documents all render from here, so the declarative view cannot
    /// drift from the code.
    fn spec(&self) -> crate::spec::ArchSpec;

    // --- Sparsity pattern & compute -------------------------------------

    /// The sparsity pattern this architecture natively executes.
    fn native_pattern(&self) -> PatternKind;

    /// The scheduling policy the architecture ships with.
    fn native_schedule(&self) -> SchedulePolicy;

    /// The MAC-slot work the dataflow sees for one 8×8 block — where each
    /// baseline's structural constraints (lockstep, ratio grouping,
    /// gather efficiency, density floors) are modelled.
    fn block_work(&self, block: &BlockStats) -> BlockWork;

    /// Prices a whole [`BlockPlan`] in one array pass. The contract: the
    /// result must equal `plan.stats(i)` fed through [`Self::block_work`]
    /// for every block `i`, in block order — the batched and scalar paths
    /// are interchangeable (`batch_parity` tests pin this per
    /// architecture). The default loops the scalar path; architectures
    /// override it with a tight pass over the plan's flat columns.
    fn block_works_batch(&self, plan: &BlockPlan) -> Vec<BlockWork> {
        let mut works = Vec::with_capacity(plan.len());
        for i in 0..plan.len() {
            works.push(self.block_work(&plan.stats(i)));
        }
        works
    }

    /// Extra sampled compute cycles outside the block schedule (e.g.
    /// SGCN's per-row CSR frontend decode), given the block work list and
    /// the PE count.
    fn extra_compute_cycles(&self, works: &[BlockWork], pes: usize) -> u64 {
        let _ = (works, pes);
        0
    }

    // --- Memory format & codec ------------------------------------------

    /// The sampled weight-stream trace of the architecture's native
    /// storage format. `plan` carries the occupancy statistics (total
    /// non-zeros, per-row totals) so formats sized by occupancy need not
    /// re-count the matrix.
    fn weight_trace(&self, layer: &SparseLayer, plan: &BlockPlan) -> WeightTrace;

    /// Whether the weight stream degenerates to a dense row stream for
    /// this layer/format, making the full matrix the information content
    /// (dense TC always; TB-STC on non-TBS layers).
    fn dense_info_stream(&self, layer: &SparseLayer, fmt: FormatOverride) -> bool {
        let _ = (layer, fmt);
        false
    }

    /// Whether the architecture consumes DDC through the adaptive codec
    /// (conversion cycles are modelled only for these).
    fn consumes_ddc(&self) -> bool {
        false
    }

    // --- Datapath, energy, platform -------------------------------------

    /// The datapath cost inventory (Table III-style component list).
    fn datapath(&self, shape: PeArrayShape) -> DatapathCosts;

    /// Multiplier-lane count. The paper keeps peak compute equal across
    /// baselines (§VII-A1).
    fn lanes(&self, shape: PeArrayShape) -> usize {
        shape.mults()
    }

    /// Off-chip bandwidth override in GB/s; `None` = platform default.
    fn bandwidth_override_gbps(&self) -> Option<f64> {
        None
    }

    /// Whether the §VI inter/intra-block sparsity-aware scheduling is
    /// present (the Fig. 16(b) ablation switches it off).
    fn has_hierarchical_scheduling(&self) -> bool {
        false
    }

    /// Per-MAC dynamic-energy multiplier over the plain FP16 MAC
    /// (index-matching overheads of unstructured engines, Fig. 6(d)).
    fn mac_energy_multiplier(&self) -> f64 {
        1.0
    }
}

/// The architecture registry, in the paper's plotting order. Indexed by
/// the `Arch` discriminant — `registry_order_matches_enum` locks the
/// correspondence.
pub static REGISTRY: [&dyn ArchModel; 8] = [
    &tc::Tc,
    &stc::Stc,
    &vegeta::Vegeta,
    &highlight::Highlight,
    &rm_stc::RmStc,
    &tb_stc::TbStc,
    &dvpe_fan::DvpeFan,
    &sgcn::Sgcn,
];

/// Resolves an architecture to its registered model.
pub fn model(arch: Arch) -> &'static dyn ArchModel {
    REGISTRY[arch as usize]
}

/// The registered model for a canonical name or alias, if any.
pub fn by_name(name: &str) -> Option<&'static dyn ArchModel> {
    REGISTRY
        .iter()
        .copied()
        .find(|m| m.canonical_name() == name || m.aliases().contains(&name))
}

/// All canonical names, registry order, comma-separated — the "valid
/// names" list of parse errors.
pub fn canonical_names() -> String {
    REGISTRY
        .iter()
        .map(|m| m.canonical_name())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders the architecture table (README "Architectures" section) from
/// the registry, so documentation cannot drift from the code.
pub fn architecture_table_markdown() -> String {
    let mut out = String::from(
        "| Architecture | Name (CLI/jobs) | Native pattern | Model |\n\
         |---|---|---|---|\n",
    );
    for m in REGISTRY {
        out.push_str(&format!(
            "| **{}** | `{}` | {} | {} |\n",
            m.display_name(),
            m.canonical_name(),
            m.native_pattern(),
            m.summary()
        ));
    }
    out
}

/// Zips a plan's occupancy columns into [`BlockWork`]s for
/// nnz-proportional dataflows, with `slots_of` mapping each block's
/// non-zero count to issued slots — the shared batched pass behind the
/// STC / RM-STC / TB-STC / DVPE+FAN / SGCN overrides.
pub(crate) fn nnz_proportional_batch(
    plan: &BlockPlan,
    slots_of: impl Fn(usize) -> usize,
) -> Vec<BlockWork> {
    plan.nnz()
        .iter()
        .zip(plan.nonempty_rows())
        .zip(plan.independent_dim())
        .map(|((&nnz, &rows), &indep)| BlockWork {
            slots: slots_of(nnz),
            nonempty_rows: rows,
            independent_dim: indep,
        })
        .collect()
}

/// Slots a lockstep SIMD engine needs: adjacent groups of `group` rows
/// run together, each costing `group × max(row nnz)`.
pub(crate) fn lockstep_slots(row_nnz: &[usize; 8], group: usize) -> usize {
    row_nnz
        .chunks(group)
        .map(|g| g.len() * g.iter().copied().max().unwrap_or(0))
        .sum()
}

/// Slots a ratio-grouped SIMD engine needs for one block: rows sharing a
/// non-zero count pack into common issues; each distinct count needs its
/// own issues (`width` lanes each).
pub(crate) fn ratio_grouped_slots(row_nnz: &[usize; 8], width: usize) -> usize {
    let mut issues = 0usize;
    for ratio in 1..=width {
        let rows = row_nnz.iter().filter(|&&c| c == ratio).count();
        if rows > 0 {
            issues += (rows * ratio).div_ceil(width);
        }
    }
    issues * width
}

/// SDC aligned per `group`-row window: each window stores its rows padded
/// to the window's max population (value + 1-byte index per slot),
/// sequentially. `row_nnz` holds the per-matrix-row non-zero counts.
/// Shared by VEGETA and the spec interpreter's `grouped-sdc` codec.
pub(crate) fn grouped_sdc_trace(row_nnz: &[usize], group: usize) -> WeightTrace {
    let mut requests = Vec::with_capacity(row_nnz.len().div_ceil(group.max(1)));
    let mut addr = 0u64;
    for window in row_nnz.chunks(group.max(1)) {
        let max_nnz = window.iter().copied().max().unwrap_or(0) as u64;
        let bytes = window.len() as u64 * max_nnz * 3; // fp16 value + index
        if bytes > 0 {
            requests.push((addr, bytes));
            addr += bytes;
        }
    }
    WeightTrace {
        requests,
        stored_bytes: addr,
    }
}

/// The TBS weight stream: DDC when the layer carries TBS metadata, a
/// dense row stream otherwise (non-prunable layers run dense). Shared by
/// TB-STC and its FAN ablation.
pub(crate) fn ddc_or_dense_trace(layer: &SparseLayer) -> WeightTrace {
    let w = layer.sampled();
    match layer.tbs() {
        Some(tbs) => {
            WeightTrace::from_access_trace(tbstc_formats::Ddc::encode(w, tbs).access_trace())
        }
        None => WeightTrace::sequential(w.len() as u64 * 2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_order_matches_enum() {
        for (i, m) in REGISTRY.iter().enumerate() {
            let arch = m.id().builtin().expect("registry entries are builtin");
            assert_eq!(arch as usize, i, "{} out of order", m.display_name());
        }
        for arch in Arch::ALL {
            assert_eq!(model(arch).id(), arch);
        }
    }

    #[test]
    fn names_are_unique_and_resolve() {
        let mut seen = std::collections::HashSet::new();
        for m in REGISTRY {
            assert!(
                seen.insert(m.canonical_name().to_string()),
                "{}",
                m.canonical_name()
            );
            for alias in m.aliases() {
                assert!(seen.insert(alias.to_string()), "alias {alias} collides");
                assert_eq!(by_name(alias).unwrap().id(), m.id());
            }
            assert_eq!(by_name(m.canonical_name()).unwrap().id(), m.id());
        }
        assert!(by_name("tpu").is_none());
    }

    #[test]
    fn table_lists_every_architecture() {
        let table = architecture_table_markdown();
        for m in REGISTRY {
            assert!(table.contains(m.display_name()), "{}", m.display_name());
            assert!(table.contains(m.canonical_name()));
        }
    }

    #[test]
    fn ratio_grouping_penalizes_mixed_rows() {
        // Uniform rows (all N=2): 2 issues = 16 slots = nnz.
        let uniform = ratio_grouped_slots(&[2; 8], 8);
        assert_eq!(uniform, 16);
        // Mixed rows {8,4,2,1,1,0,0,0}: each ratio its own issues.
        let mixed = ratio_grouped_slots(&[8, 4, 2, 1, 1, 0, 0, 0], 8);
        assert!(mixed > 16, "mixed rows need more slots: {mixed}");
    }

    #[test]
    fn lockstep_free_on_uniform_rows() {
        assert_eq!(lockstep_slots(&[4; 8], 2), 32); // = nnz
        assert_eq!(lockstep_slots(&[4; 8], 4), 32);
        // Heterogeneous neighbours pad to the group max.
        let mixed = lockstep_slots(&[8, 1, 4, 0, 2, 2, 1, 0], 2);
        let nnz = 8 + 1 + 4 + 2 + 2 + 1;
        assert!(mixed > nnz, "{mixed} > {nnz}");
        assert_eq!(mixed, 2 * (8 + 4 + 2 + 1));
        // Wider lockstep pads at least as much.
        assert!(lockstep_slots(&[8, 1, 4, 0, 2, 2, 1, 0], 4) >= mixed);
    }

    #[test]
    fn sequential_trace_covers_exactly() {
        let t = WeightTrace::sequential(1000);
        let total: u64 = t.requests.iter().map(|&(_, b)| b).sum();
        assert_eq!(total, 1000);
        assert_eq!(t.stored_bytes, 1000);
        assert!(t.requests.windows(2).all(|w| w[1].0 == w[0].0 + w[0].1));
    }
}
