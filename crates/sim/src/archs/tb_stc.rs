//! TB-STC: this paper. TBS pattern, DDC storage consumed through the
//! adaptive codec, and the §VI hierarchical sparsity-aware scheduling.

use tbstc_energy::components::{self, DatapathCosts, PeArrayShape};
use tbstc_sparsity::PatternKind;

use crate::arch::{Arch, ArchId};
use crate::archs::{
    ddc_or_dense_trace, nnz_proportional_batch, ArchModel, BlockStats, WeightTrace,
};
use crate::compute::SchedulePolicy;
use crate::layer::SparseLayer;
use crate::memory::FormatOverride;
use crate::plan::BlockPlan;
use crate::sched::{BlockWork, InterBlockPolicy, IntraBlockPolicy};
use crate::spec::{ArchSpec, CodecSpec, Dataflow, DatapathKind, DenseInfoPolicy};

/// The TB-STC architecture (paper).
pub struct TbStc;

impl ArchModel for TbStc {
    fn id(&self) -> ArchId {
        ArchId::Builtin(Arch::TbStc)
    }

    fn display_name(&self) -> &'static str {
        "TB-STC"
    }

    fn canonical_name(&self) -> &'static str {
        "tb-stc"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["tbstc"]
    }

    fn summary(&self) -> &'static str {
        "This paper: TBS pattern, DDC + codec, hierarchical scheduling"
    }

    fn spec(&self) -> ArchSpec {
        ArchSpec {
            name: self.canonical_name().into(),
            display: self.display_name().into(),
            summary: self.summary().into(),
            pattern: self.native_pattern(),
            schedule: self.native_schedule(),
            hierarchical_scheduling: self.has_hierarchical_scheduling(),
            dataflow: Dataflow::nnz(),
            row_frontend: false,
            codec: CodecSpec::DdcOrDense,
            dense_info: DenseInfoPolicy::NonTbsNative,
            consumes_ddc: self.consumes_ddc(),
            bandwidth_gbps: self.bandwidth_override_gbps(),
            lanes: None,
            datapath: DatapathKind::TbStc,
            mac_energy_multiplier: self.mac_energy_multiplier(),
        }
    }

    fn native_pattern(&self) -> PatternKind {
        PatternKind::Tbs
    }

    /// The §VI hierarchical scheduling (Fig. 11).
    fn native_schedule(&self) -> SchedulePolicy {
        SchedulePolicy {
            inter: InterBlockPolicy::SparsityAware,
            intra: IntraBlockPolicy::Balanced,
        }
    }

    /// Nnz-proportional. The per-original-row counts are the
    /// computation-format row occupancy (elements group by reduction row
    /// in both block dimensions), which is what the naive intra policy
    /// pays per-row for.
    fn block_work(&self, b: &BlockStats) -> BlockWork {
        BlockWork {
            slots: b.nnz,
            nonempty_rows: b.nonempty_rows,
            independent_dim: b.independent_dim,
        }
    }

    /// Nnz pricing zips the plan's occupancy columns directly.
    fn block_works_batch(&self, plan: &BlockPlan) -> Vec<BlockWork> {
        nnz_proportional_batch(plan, |nnz| nnz)
    }

    /// Dual-dimensional compression; non-prunable layers run dense rows.
    fn weight_trace(&self, layer: &SparseLayer, _plan: &BlockPlan) -> WeightTrace {
        ddc_or_dense_trace(layer)
    }

    fn dense_info_stream(&self, layer: &SparseLayer, fmt: FormatOverride) -> bool {
        layer.tbs().is_none() && fmt == FormatOverride::Native
    }

    fn consumes_ddc(&self) -> bool {
        true
    }

    fn datapath(&self, shape: PeArrayShape) -> DatapathCosts {
        components::tb_stc(shape)
    }

    fn has_hierarchical_scheduling(&self) -> bool {
        true
    }
}
