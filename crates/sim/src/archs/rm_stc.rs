//! RM-STC: unstructured row-merge sparse tensor core — nnz-proportional
//! compute with merge bubbles, bitmap-compressed weights, and
//! gather/union index-matching energy.

use tbstc_energy::components::{self, DatapathCosts, PeArrayShape};
use tbstc_sparsity::PatternKind;

use crate::arch::{Arch, ArchId};
use crate::archs::{nnz_proportional_batch, ArchModel, BlockStats, WeightTrace};
use crate::compute::SchedulePolicy;
use crate::layer::SparseLayer;
use crate::plan::BlockPlan;
use crate::sched::{BlockWork, InterBlockPolicy, IntraBlockPolicy};
use crate::spec::{ArchSpec, CodecSpec, Dataflow, DatapathKind, DenseInfoPolicy, SlotTerm};

/// Row-merge packing efficiency of RM-STC's unstructured dataflow
/// (merge bubbles between rows; its speedup loss vs TB-STC is small —
/// paper: 1.06×).
const EFFICIENCY: f64 = 0.94;

/// The RM-STC baseline.
pub struct RmStc;

impl ArchModel for RmStc {
    fn id(&self) -> ArchId {
        ArchId::Builtin(Arch::RmStc)
    }

    fn display_name(&self) -> &'static str {
        "RM-STC"
    }

    fn canonical_name(&self) -> &'static str {
        "rm-stc"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["rmstc"]
    }

    fn summary(&self) -> &'static str {
        "Unstructured row-merge; nnz-proportional, pays gather/union energy"
    }

    fn spec(&self) -> ArchSpec {
        ArchSpec {
            name: self.canonical_name().into(),
            display: self.display_name().into(),
            summary: self.summary().into(),
            pattern: self.native_pattern(),
            schedule: self.native_schedule(),
            hierarchical_scheduling: self.has_hierarchical_scheduling(),
            dataflow: Dataflow {
                terms: vec![SlotTerm::Nnz],
                multiplier: 1.0,
                efficiency: EFFICIENCY,
            },
            row_frontend: false,
            codec: CodecSpec::Bitmap,
            dense_info: DenseInfoPolicy::Never,
            consumes_ddc: self.consumes_ddc(),
            bandwidth_gbps: self.bandwidth_override_gbps(),
            lanes: None,
            datapath: DatapathKind::RmStc,
            mac_energy_multiplier: self.mac_energy_multiplier(),
        }
    }

    fn native_pattern(&self) -> PatternKind {
        PatternKind::Unstructured
    }

    /// The row-merge dataflow achieves the same stream merging for
    /// unstructured work as TB-STC's scheduler.
    fn native_schedule(&self) -> SchedulePolicy {
        SchedulePolicy {
            inter: InterBlockPolicy::SparsityAware,
            intra: IntraBlockPolicy::Balanced,
        }
    }

    /// Nnz-proportional with the row-merge efficiency factor.
    fn block_work(&self, b: &BlockStats) -> BlockWork {
        BlockWork {
            slots: ((b.nnz as f64) / EFFICIENCY).ceil() as usize,
            nonempty_rows: b.nonempty_rows,
            independent_dim: b.independent_dim,
        }
    }

    /// Nnz pricing zips the plan's occupancy columns directly.
    fn block_works_batch(&self, plan: &BlockPlan) -> Vec<BlockWork> {
        nnz_proportional_batch(plan, |nnz| ((nnz as f64) / EFFICIENCY).ceil() as usize)
    }

    /// Bitmap + packed values (the row-merge frontend consumes streams).
    fn weight_trace(&self, _layer: &SparseLayer, plan: &BlockPlan) -> WeightTrace {
        let (rows, cols) = plan.sampled_shape();
        let nnz = plan.total_nnz() as u64;
        let bitmap = ((rows * cols) as u64).div_ceil(8);
        WeightTrace::sequential(nnz * 2 + bitmap)
    }

    fn datapath(&self, shape: PeArrayShape) -> DatapathCosts {
        components::rm_stc(shape)
    }

    /// Gather/union index matching burns extra energy per operand — the
    /// reason RM-STC's EDP trails TB-STC even at similar speed
    /// (Fig. 6(d), §VII-C1).
    fn mac_energy_multiplier(&self) -> f64 {
        2.1
    }
}
