//! Golden parity fixture: every [`LayerResult`] field, bit-identical.
//!
//! The fixture under `tests/fixtures/golden_layer_results.txt` was
//! recorded on main *before* the `ArchModel` registry refactor, across
//! all 8 architectures × sparsities {0.5, 0.75, 0.9375} × two model
//! layers (BERT attn.q and ResNet-50 conv2 3x3). Floating-point fields
//! are stored as raw IEEE-754 bits, so any change to the arithmetic —
//! even one that only perturbs rounding — fails the test.
//!
//! Regenerate (only when a behaviour change is intended and reviewed):
//!
//! ```sh
//! TBSTC_BLESS=1 cargo test -p tbstc-sim --test golden_parity
//! ```

use tbstc_models::{bert_base, resnet50, LayerShape};
use tbstc_sim::{Arch, HwConfig, LayerResult, LayerSim};

const FIXTURE_REL: &str = "tests/fixtures/golden_layer_results.txt";
const SEED: u64 = 1234;
const SPARSITIES: [f64; 3] = [0.5, 0.75, 0.9375];
const ARCHS: [Arch; 8] = [
    Arch::Tc,
    Arch::Stc,
    Arch::Vegeta,
    Arch::Highlight,
    Arch::RmStc,
    Arch::TbStc,
    Arch::DvpeFan,
    Arch::Sgcn,
];

fn fixture_layers() -> Vec<LayerShape> {
    vec![
        bert_base(128).layers[0].clone(), // attn.q: 768 x 768 x 128
        resnet50(64).layers[3].clone(),   // conv2 3x3: 64 x 576 x 256
    ]
}

/// One fixture line per case. u64 counters in decimal; every f64 as its
/// raw bit pattern (hex) so the comparison is exact, with a human-readable
/// rendering alongside for reviewability.
fn render(arch: Arch, sparsity: f64, res: &LayerResult) -> String {
    let f = |x: f64| format!("{:016x}({x:.6e})", x.to_bits());
    format!(
        "arch={arch} sparsity={sparsity} layer={name} cycles={cycles} \
         compute={compute} memory={memory} codec_hidden={ch} codec_exposed={ce} \
         useful_macs={macs} compute_util={cu} bandwidth_util={bu} \
         traffic_bytes={tb} energy_pj={en}",
        name = res.name,
        cycles = res.cycles,
        compute = res.breakdown.compute,
        memory = res.breakdown.memory,
        ch = res.breakdown.codec_hidden,
        ce = res.breakdown.codec_exposed,
        macs = res.useful_macs,
        cu = f(res.compute_utilization),
        bu = f(res.bandwidth_utilization),
        tb = f(res.traffic_bytes),
        en = f(res.energy_pj),
    )
}

fn current() -> String {
    let cfg = HwConfig::paper_default();
    let mut out = String::new();
    out.push_str("# Golden LayerResult fixture — recorded on pre-refactor main.\n");
    out.push_str("# 8 archs x sparsities {0.5, 0.75, 0.9375} x 2 layers, seed 1234.\n");
    for shape in fixture_layers() {
        for arch in ARCHS {
            for sparsity in SPARSITIES {
                let res = LayerSim::new(&shape)
                    .arch(arch)
                    .sparsity(sparsity)
                    .seed(SEED)
                    .run(&cfg);
                out.push_str(&render(arch, sparsity, &res));
                out.push('\n');
            }
        }
    }
    out
}

#[test]
fn layer_results_bit_identical_to_golden_fixture() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE_REL);
    let got = current();
    if std::env::var_os("TBSTC_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    if want != got {
        // Diff line-by-line so a failure names the divergent case instead
        // of dumping both files.
        for (w, g) in want.lines().zip(got.lines()) {
            assert_eq!(w, g, "golden fixture mismatch");
        }
        assert_eq!(
            want.lines().count(),
            got.lines().count(),
            "golden fixture case-count mismatch"
        );
        panic!("golden fixture differs");
    }
}

#[test]
fn fixture_covers_the_whole_grid() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(FIXTURE_REL);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    let cases: Vec<&str> = text.lines().filter(|l| l.starts_with("arch=")).collect();
    assert_eq!(
        cases.len(),
        ARCHS.len() * SPARSITIES.len() * fixture_layers().len(),
        "one fixture line per (arch, sparsity, layer)"
    );
    for arch in ARCHS {
        assert!(
            cases
                .iter()
                .any(|l| l.starts_with(&format!("arch={arch} "))),
            "fixture covers {arch}"
        );
    }
}
