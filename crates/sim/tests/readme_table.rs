//! Keeps the README "Architectures" table honest: it must contain,
//! verbatim, the table rendered from the architecture registry. When an
//! `ArchModel` identity changes, re-paste the output of
//! `archs::architecture_table_markdown()` into README.md.

use std::path::Path;

#[test]
fn readme_architecture_table_matches_registry() {
    let readme_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .join("README.md");
    let readme = std::fs::read_to_string(&readme_path).expect("read README.md");
    let table = tbstc_sim::archs::architecture_table_markdown();
    assert!(
        readme.contains(&table),
        "README.md's Architectures table is out of sync with the registry.\n\
         Replace it with:\n\n{table}"
    );
}
