//! Repo lint: variant-level dispatch over `Arch` (match arms or
//! or-patterns naming a variant) is only allowed inside
//! `crates/sim/src/archs/` — everywhere else must go through the
//! registry. The rule itself lives in `tbstc-lint` (`arch-dispatch`);
//! this test drives it over the workspace and pins the shapes it must
//! and must not flag. CI runs the same engine via
//! `tbstc-cli lint --deny-warnings`.

use std::path::Path;
use tbstc_lint::{lint_source, lint_workspace, LintOptions};

/// Findings the `arch-dispatch` rule produces for an inline snippet,
/// pretending it lives outside the exempt `crates/sim/src/archs/` tree.
fn dispatches(snippet: &str) -> bool {
    lint_source("crates/demo/src/lib.rs", snippet)
        .iter()
        .any(|f| f.rule == "arch-dispatch")
}

#[test]
fn workspace_is_free_of_arch_dispatch() {
    // crates/sim/tests -> crates/sim -> crates -> workspace root
    let workspace = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    assert!(
        workspace.join("crates").is_dir(),
        "no crates/ under {}",
        workspace.display()
    );

    let report = lint_workspace(&LintOptions {
        root: workspace.to_path_buf(),
        rules: Some(vec!["arch-dispatch".to_string()]),
        baseline: None,
        cache: None,
    })
    .expect("lint run");
    let offenders: Vec<String> = report.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        offenders.is_empty(),
        "Arch variant dispatch outside crates/sim/src/archs/ — route through \
         the ArchModel registry instead:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn lint_rule_catches_dispatch_shapes() {
    assert!(dispatches(
        "fn f(w: Work) -> B { match w.arch { Arch::Tc => BlockWork { n: 1 }, _ => b() } }"
    ));
    assert!(dispatches(
        "fn f(a: Arch) -> bool { matches!(a, Arch::TbStc | Arch::DvpeFan) }"
    ));
    // Non-dispatch uses stay legal.
    assert!(!dispatches("fn f() -> Arch { Arch::TbStc }"));
    assert!(!dispatches("const ALL: [Arch; 2] = [Arch::Tc, Arch::Stc];"));
    assert!(!dispatches("fn f(a: Arch) -> bool { a == Arch::Sgcn }"));
    assert!(!dispatches(
        "fn f(x: Ext) -> u8 { match x { Arch::TbStcLike => 1 } }"
    ));
}

#[test]
fn archs_modules_are_exempt() {
    let flagged = lint_source(
        "crates/sim/src/archs/tb_stc.rs",
        "fn f(a: Arch) -> bool { matches!(a, Arch::TbStc | Arch::DvpeFan) }",
    );
    assert!(
        flagged.iter().all(|f| f.rule != "arch-dispatch"),
        "crates/sim/src/archs/ must stay exempt"
    );
}
