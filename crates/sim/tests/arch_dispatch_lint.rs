//! Repo lint: variant-level dispatch over `Arch` (match arms or
//! or-patterns naming a variant) is only allowed inside
//! `crates/sim/src/archs/` — everywhere else must go through the
//! registry. The CI "Arch dispatch lint" grep step enforces the same
//! rule outside `cargo test`.

use std::fs;
use std::path::{Path, PathBuf};

const VARIANTS: [&str; 8] = [
    "Tc",
    "Stc",
    "Vegeta",
    "Highlight",
    "RmStc",
    "TbStc",
    "DvpeFan",
    "Sgcn",
];

/// Collects every `.rs` file under `dir`, recursively.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Does this line dispatch on an `Arch` variant? True when `Arch::<V>` is
/// followed (after whitespace) by `=>` or a `|` or-pattern separator.
fn dispatches(line: &str) -> bool {
    for v in VARIANTS {
        let needle = format!("Arch::{v}");
        let mut from = 0;
        while let Some(i) = line[from..].find(&needle) {
            let after = &line[from + i + needle.len()..];
            // Don't let `TbStc` match inside `TbStcSomething`.
            let clean_end = after
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
            let rest = after.trim_start();
            if clean_end && (rest.starts_with("=>") || rest.starts_with('|')) {
                return true;
            }
            from += i + needle.len();
        }
    }
    false
}

#[test]
fn arch_dispatch_lint() {
    // crates/sim/tests -> crates/sim -> crates -> workspace root
    let workspace = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let crates = workspace.join("crates");
    assert!(crates.is_dir(), "no crates/ at {}", crates.display());

    let mut offenders = Vec::new();
    for crate_dir in fs::read_dir(&crates).expect("read crates/").flatten() {
        let src = crate_dir.path().join("src");
        let mut files = Vec::new();
        rust_files(&src, &mut files);
        for file in files {
            if file.starts_with(crates.join("sim/src/archs")) {
                continue;
            }
            let text = fs::read_to_string(&file).expect("read source file");
            for (no, line) in text.lines().enumerate() {
                if dispatches(line) {
                    offenders.push(format!("{}:{}: {}", file.display(), no + 1, line.trim()));
                }
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "Arch variant dispatch outside crates/sim/src/archs/ — route through \
         the ArchModel registry instead:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn lint_pattern_catches_dispatch_shapes() {
    assert!(dispatches("Arch::Tc => BlockWork {"));
    assert!(dispatches("    Arch::TbStc | Arch::DvpeFan => {"));
    assert!(dispatches("matches!(arch, Arch::TbStc | Arch::DvpeFan)"));
    // Non-dispatch uses stay legal.
    assert!(!dispatches("let a = Arch::TbStc;"));
    assert!(!dispatches("[Arch::Tc, Arch::Stc]"));
    assert!(!dispatches("arch == Arch::Sgcn"));
    assert!(!dispatches("Arch::TbStcLike => x"));
}
