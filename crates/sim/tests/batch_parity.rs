//! Parity between the scalar per-block pricing (`ArchModel::block_work`)
//! and the batched plan pricing (`ArchModel::block_works_batch`), plus
//! bit-identity of the [`tbstc_sim::SimOptions`] entry point against the
//! native one.

use tbstc_models::LayerShape;
use tbstc_sim::plan::BlockPlan;
use tbstc_sim::spec::{CustomArch, Dataflow, SlotTerm};
use tbstc_sim::{Arch, ArchModel, HwConfig, LayerSim, SimOptions, REGISTRY};

fn shape(name: &str, m: usize, k: usize, n: usize) -> LayerShape {
    LayerShape {
        name: name.into(),
        m,
        k,
        n,
        repeats: 1,
        prunable: true,
    }
}

/// Every architecture's batched pricing must reproduce the scalar
/// pricing block-for-block, across sparsities, seeds, and ragged shapes
/// whose sampled dimensions are not multiples of the 8×8 block grid.
#[test]
fn batch_pricing_matches_scalar_pricing() {
    let cfg = HwConfig::paper_default();
    let shapes = [
        shape("square", 64, 64, 16),
        shape("ragged-rows", 20, 64, 16),
        shape("ragged-cols", 64, 28, 16),
        shape("ragged-both", 33, 41, 8),
        shape("tiny", 5, 7, 4),
    ];
    for model in REGISTRY {
        let arch = model.id().builtin().expect("registry entries are builtin");
        for s in &shapes {
            for (i, &target) in [0.0, 0.5, 0.75, 0.9375].iter().enumerate() {
                let layer = LayerSim::new(s)
                    .arch(arch)
                    .sparsity(target)
                    .seed(900 + i as u64)
                    .build(&cfg);
                let plan = BlockPlan::build(&layer);
                let scalar: Vec<_> = (0..plan.len())
                    .map(|b| model.block_work(&plan.stats(b)))
                    .collect();
                let batch = model.block_works_batch(&plan);
                assert_eq!(
                    scalar, batch,
                    "{arch} {} target {target}: scalar vs batch pricing diverged",
                    s.name
                );
            }
        }
    }
}

/// `CustomArch` honours the same scalar≡batch contract as the builtins,
/// on every batched fast path (nnz-only, dense-only) and on the scalar
/// fallback (mixed terms with an overhead factor).
#[test]
fn custom_arch_batch_matches_scalar() {
    let cfg = HwConfig::paper_default();
    let shapes = [
        shape("square", 64, 64, 16),
        shape("ragged-both", 33, 41, 8),
        shape("tiny", 5, 7, 4),
    ];
    // Every builtin rendered as a spec exercises the nnz/dense fast
    // paths; the mixed spec forces the per-block stats fallback.
    let mut customs: Vec<CustomArch> = REGISTRY
        .iter()
        .map(|m| CustomArch::new(m.spec()).expect("builtin spec valid"))
        .collect();
    let mut mixed = Arch::TbStc.model().spec();
    mixed.name = "mixed-terms".into();
    mixed.dataflow = Dataflow {
        terms: vec![
            SlotTerm::Nnz,
            SlotTerm::Lockstep { group: 2 },
            SlotTerm::RatioGrouped { width: 4 },
        ],
        multiplier: 1.07,
        efficiency: 0.9,
    };
    customs.push(CustomArch::new(mixed).expect("mixed spec valid"));

    for custom in &customs {
        for s in &shapes {
            for (i, &target) in [0.0, 0.5, 0.9375].iter().enumerate() {
                let layer = LayerSim::new(s)
                    .arch(Arch::TbStc)
                    .sparsity(target)
                    .seed(400 + i as u64)
                    .build(&cfg);
                let plan = BlockPlan::build(&layer);
                let scalar: Vec<_> = (0..plan.len())
                    .map(|b| custom.block_work(&plan.stats(b)))
                    .collect();
                let batch = custom.block_works_batch(&plan);
                assert_eq!(
                    scalar,
                    batch,
                    "{} {} target {target}: scalar vs batch pricing diverged",
                    custom.canonical_name(),
                    s.name
                );
            }
        }
    }
}

/// The plan's occupancy columns must agree with their own per-block
/// [`tbstc_sim::archs::BlockStats`] view on ragged shapes.
#[test]
fn plan_columns_consistent_on_ragged_shapes() {
    let cfg = HwConfig::paper_default();
    let layer = LayerSim::new(&shape("ragged", 20, 28, 8))
        .arch(Arch::TbStc)
        .sparsity(0.75)
        .seed(77)
        .build(&cfg);
    let plan = BlockPlan::build(&layer);
    let (gr, gc) = plan.grid();
    assert_eq!(plan.len(), gr * gc);
    for b in 0..plan.len() {
        let stats = plan.stats(b);
        assert_eq!(stats.nnz, plan.nnz()[b]);
        assert_eq!(stats.nonempty_rows, plan.nonempty_rows()[b]);
        assert_eq!(stats.row_nnz.iter().sum::<usize>(), stats.nnz);
        assert!(stats.nnz <= stats.dense_slots);
    }
}

/// `simulate_layer` and `simulate_layer_with(&SimOptions::native())` are
/// the same code path; their results must be bit-identical, per
/// architecture, on the golden-fixture shape.
#[test]
fn sim_options_native_is_bit_identical() {
    let cfg = HwConfig::paper_default();
    let s = shape("bert-ish", 128, 128, 64);
    for model in REGISTRY {
        let arch = model.id().builtin().expect("registry entries are builtin");
        let layer = LayerSim::new(&s)
            .arch(arch)
            .sparsity(0.75)
            .seed(1234)
            .build(&cfg);
        let a = tbstc_sim::simulate_layer(arch, &layer, &cfg);
        let b = tbstc_sim::simulate_layer_with(arch, &layer, &cfg, &SimOptions::native());
        assert_eq!(a.cycles, b.cycles, "{arch}");
        assert_eq!(a.breakdown, b.breakdown, "{arch}");
        assert_eq!(a.useful_macs, b.useful_macs, "{arch}");
        assert_eq!(
            a.compute_utilization.to_bits(),
            b.compute_utilization.to_bits(),
            "{arch}"
        );
        assert_eq!(
            a.bandwidth_utilization.to_bits(),
            b.bandwidth_utilization.to_bits(),
            "{arch}"
        );
        assert_eq!(
            a.traffic_bytes.to_bits(),
            b.traffic_bytes.to_bits(),
            "{arch}"
        );
        assert_eq!(a.energy_pj.to_bits(), b.energy_pj.to_bits(), "{arch}");
    }
}
